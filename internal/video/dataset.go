package video

import "fmt"

// The paper's 16-video dataset (§2):
//
//   - 8 FFmpeg encodes: the four Xiph open titles (Elephant Dream, Big Buck
//     Bunny, Tears of Steel, Sintel), each encoded in H.264 and H.265 with
//     2-second chunks and a 2× cap following Netflix's per-title recipe.
//   - 8 YouTube encodes: the same four titles plus four downloaded videos
//     (sports, animal, nature, action), all H.264 with ~5-second chunks.
//
// This file reconstructs that dataset deterministically.

// Title describes one source title.
type Title struct {
	Name  string
	Genre Genre
}

// OpenTitles are the four publicly available raw sources.
var OpenTitles = []Title{
	{"ED", SciFi},      // Elephant Dream
	{"BBB", Animation}, // Big Buck Bunny
	{"ToS", SciFi},     // Tears of Steel
	{"Sintel", Animation},
}

// YouTubeOnlyTitles are the four additional YouTube-downloaded titles.
var YouTubeOnlyTitles = []Title{
	{"Sports", Sports},
	{"Animal", Animal},
	{"Nature", Nature},
	{"Action", Action},
}

// FFmpegConfig is the generator configuration of one FFmpeg-pipeline encode
// (2-second chunks, 2× cap, 24 fps film content). Exposed separately from
// FFmpegVideo so callers (the artifact cache) can key on the full
// deterministic input without generating.
func FFmpegConfig(t Title, codec Codec) GenConfig {
	return GenConfig{
		Name:        t.Name,
		Genre:       t.Genre,
		Codec:       codec,
		Source:      FFmpeg,
		ChunkDurSec: 2,
		Cap:         2.0,
		DurationSec: 600,
		FPS:         24,
	}
}

// FFmpegVideo generates one FFmpeg-pipeline encode.
func FFmpegVideo(t Title, codec Codec) *Video {
	return Generate(FFmpegConfig(t, codec))
}

// YouTubeConfig is the generator configuration of one YouTube-pipeline
// encode (5-second chunks, H.264, 30 fps).
func YouTubeConfig(t Title) GenConfig {
	return GenConfig{
		Name:        t.Name,
		Genre:       t.Genre,
		Codec:       H264,
		Source:      YouTube,
		ChunkDurSec: 5,
		Cap:         2.0,
		DurationSec: 600,
		FPS:         30,
	}
}

// YouTubeVideo generates one YouTube-pipeline encode.
func YouTubeVideo(t Title) *Video {
	return Generate(YouTubeConfig(t))
}

// Cap4xConfig is the generator configuration of the 4×-capped Elephant
// Dream encode used in the higher bitrate-variability study (§3.3, §6.6).
// Note it shares a video ID with FFmpegConfig(ED, H264) — only the cap
// differs — so configurations, not IDs, are the cache key for generation.
func Cap4xConfig() GenConfig {
	return GenConfig{
		Name:        "ED",
		Genre:       SciFi,
		Codec:       H264,
		Source:      FFmpeg,
		ChunkDurSec: 2,
		Cap:         4.0,
		DurationSec: 600,
		FPS:         24,
	}
}

// Cap4xED generates the 4×-capped Elephant Dream encode.
func Cap4xED() *Video {
	return Generate(Cap4xConfig())
}

// DatasetConfigs returns the generator configurations of the full
// 16-video dataset in a stable order: 8 FFmpeg encodes (4 titles ×
// {H.264, H.265}) then 8 YouTube encodes.
func DatasetConfigs() []GenConfig {
	var out []GenConfig
	for _, t := range OpenTitles {
		out = append(out, FFmpegConfig(t, H264))
	}
	for _, t := range OpenTitles {
		out = append(out, FFmpegConfig(t, H265))
	}
	for _, t := range OpenTitles {
		out = append(out, YouTubeConfig(t))
	}
	for _, t := range YouTubeOnlyTitles {
		out = append(out, YouTubeConfig(t))
	}
	return out
}

// ID returns the video ID this configuration generates, without
// generating: the same Name-Source-Codec string as Video.ID.
func (cfg GenConfig) ID() string {
	return fmt.Sprintf("%s-%s-%s", cfg.Name, cfg.Source, cfg.Codec)
}

// Dataset generates the full 16-video dataset in DatasetConfigs order.
func Dataset() []*Video {
	var out []*Video
	for _, cfg := range DatasetConfigs() {
		out = append(out, Generate(cfg))
	}
	return out
}

// YouTubeSetConfigs returns the configurations of the 8 YouTube-encoded
// videos (Table 1's rows).
func YouTubeSetConfigs() []GenConfig {
	var out []GenConfig
	for _, t := range OpenTitles {
		out = append(out, YouTubeConfig(t))
	}
	for _, t := range YouTubeOnlyTitles {
		out = append(out, YouTubeConfig(t))
	}
	return out
}

// YouTubeSet generates the 8 YouTube-encoded videos (Table 1's rows).
func YouTubeSet() []*Video {
	var out []*Video
	for _, cfg := range YouTubeSetConfigs() {
		out = append(out, Generate(cfg))
	}
	return out
}

// FFmpegSet returns the 8 FFmpeg-encoded videos for the given codec order:
// H.264 first, then H.265.
func FFmpegSet() []*Video {
	var out []*Video
	for _, t := range OpenTitles {
		out = append(out, FFmpegVideo(t, H264))
	}
	for _, t := range OpenTitles {
		out = append(out, FFmpegVideo(t, H265))
	}
	return out
}

// ConfigByID finds the dataset configuration for an ID string (e.g.
// "ED-ffmpeg-h264") without generating any video.
func ConfigByID(id string) (GenConfig, bool) {
	for _, cfg := range DatasetConfigs() {
		if cfg.ID() == id {
			return cfg, true
		}
	}
	return GenConfig{}, false
}

// ByID finds a video in the dataset by its ID string; it returns nil when
// absent. Unlike Dataset, it generates only the requested video.
func ByID(id string) *Video {
	if cfg, ok := ConfigByID(id); ok {
		return Generate(cfg)
	}
	return nil
}
