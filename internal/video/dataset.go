package video

// The paper's 16-video dataset (§2):
//
//   - 8 FFmpeg encodes: the four Xiph open titles (Elephant Dream, Big Buck
//     Bunny, Tears of Steel, Sintel), each encoded in H.264 and H.265 with
//     2-second chunks and a 2× cap following Netflix's per-title recipe.
//   - 8 YouTube encodes: the same four titles plus four downloaded videos
//     (sports, animal, nature, action), all H.264 with ~5-second chunks.
//
// This file reconstructs that dataset deterministically.

// Title describes one source title.
type Title struct {
	Name  string
	Genre Genre
}

// OpenTitles are the four publicly available raw sources.
var OpenTitles = []Title{
	{"ED", SciFi},      // Elephant Dream
	{"BBB", Animation}, // Big Buck Bunny
	{"ToS", SciFi},     // Tears of Steel
	{"Sintel", Animation},
}

// YouTubeOnlyTitles are the four additional YouTube-downloaded titles.
var YouTubeOnlyTitles = []Title{
	{"Sports", Sports},
	{"Animal", Animal},
	{"Nature", Nature},
	{"Action", Action},
}

// FFmpegVideo generates one FFmpeg-pipeline encode (2-second chunks, 2× cap,
// 24 fps film content).
func FFmpegVideo(t Title, codec Codec) *Video {
	return Generate(GenConfig{
		Name:     t.Name,
		Genre:    t.Genre,
		Codec:    codec,
		Source:   FFmpeg,
		ChunkDur: 2,
		Cap:      2.0,
		Duration: 600,
		FPS:      24,
	})
}

// YouTubeVideo generates one YouTube-pipeline encode (5-second chunks,
// H.264, 30 fps).
func YouTubeVideo(t Title) *Video {
	return Generate(GenConfig{
		Name:     t.Name,
		Genre:    t.Genre,
		Codec:    H264,
		Source:   YouTube,
		ChunkDur: 5,
		Cap:      2.0,
		Duration: 600,
		FPS:      30,
	})
}

// Cap4xED generates the 4×-capped Elephant Dream encode used in the higher
// bitrate-variability study (§3.3, §6.6).
func Cap4xED() *Video {
	return Generate(GenConfig{
		Name:     "ED",
		Genre:    SciFi,
		Codec:    H264,
		Source:   FFmpeg,
		ChunkDur: 2,
		Cap:      4.0,
		Duration: 600,
		FPS:      24,
	})
}

// Dataset returns the full 16-video dataset in a stable order:
// 8 FFmpeg encodes (4 titles × {H.264, H.265}) then 8 YouTube encodes.
func Dataset() []*Video {
	var out []*Video
	for _, t := range OpenTitles {
		out = append(out, FFmpegVideo(t, H264))
	}
	for _, t := range OpenTitles {
		out = append(out, FFmpegVideo(t, H265))
	}
	for _, t := range OpenTitles {
		out = append(out, YouTubeVideo(t))
	}
	for _, t := range YouTubeOnlyTitles {
		out = append(out, YouTubeVideo(t))
	}
	return out
}

// YouTubeSet returns the 8 YouTube-encoded videos (Table 1's rows).
func YouTubeSet() []*Video {
	var out []*Video
	for _, t := range OpenTitles {
		out = append(out, YouTubeVideo(t))
	}
	for _, t := range YouTubeOnlyTitles {
		out = append(out, YouTubeVideo(t))
	}
	return out
}

// FFmpegSet returns the 8 FFmpeg-encoded videos for the given codec order:
// H.264 first, then H.265.
func FFmpegSet() []*Video {
	var out []*Video
	for _, t := range OpenTitles {
		out = append(out, FFmpegVideo(t, H264))
	}
	for _, t := range OpenTitles {
		out = append(out, FFmpegVideo(t, H265))
	}
	return out
}

// ByID finds a video in the dataset by its ID string (e.g.
// "ED-ffmpeg-h264"); it returns nil when absent.
func ByID(id string) *Video {
	for _, v := range Dataset() {
		if v.ID() == id {
			return v
		}
	}
	return nil
}
