package video

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDatasetComposition(t *testing.T) {
	ds := Dataset()
	if len(ds) != 16 {
		t.Fatalf("dataset has %d videos, want 16", len(ds))
	}
	ids := make(map[string]bool)
	var ffmpeg, youtube, h264, h265 int
	for _, v := range ds {
		if ids[v.ID()] {
			t.Errorf("duplicate video ID %s", v.ID())
		}
		ids[v.ID()] = true
		switch v.Source {
		case FFmpeg:
			ffmpeg++
			if v.ChunkDurSec != 2 {
				t.Errorf("%s: FFmpeg chunk duration %v, want 2", v.ID(), v.ChunkDurSec)
			}
		case YouTube:
			youtube++
			if v.ChunkDurSec != 5 {
				t.Errorf("%s: YouTube chunk duration %v, want 5", v.ID(), v.ChunkDurSec)
			}
			if v.Codec != H264 {
				t.Errorf("%s: YouTube encode must be H.264", v.ID())
			}
		}
		switch v.Codec {
		case H264:
			h264++
		case H265:
			h265++
		}
	}
	if ffmpeg != 8 || youtube != 8 {
		t.Errorf("source split %d/%d, want 8/8", ffmpeg, youtube)
	}
	if h265 != 4 {
		t.Errorf("%d H.265 encodes, want 4", h265)
	}
}

func TestDatasetValid(t *testing.T) {
	for _, v := range Dataset() {
		if err := v.Validate(); err != nil {
			t.Errorf("%s invalid: %v", v.ID(), err)
		}
	}
}

func TestSixTrackLadder(t *testing.T) {
	v := Dataset()[0]
	if v.NumTracks() != 6 {
		t.Fatalf("%d tracks, want 6", v.NumTracks())
	}
	wantRes := []string{"144p", "240p", "360p", "480p", "720p", "1080p"}
	for i, tr := range v.Tracks {
		if tr.Res.Name != wantRes[i] {
			t.Errorf("track %d resolution %s, want %s", i, tr.Res.Name, wantRes[i])
		}
		if tr.ID != i {
			t.Errorf("track %d has ID %d", i, tr.ID)
		}
	}
}

func TestDurationAroundTenMinutes(t *testing.T) {
	for _, v := range Dataset() {
		if d := v.Duration(); math.Abs(d-600) > 5 {
			t.Errorf("%s duration %v, want ~600", v.ID(), d)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := FFmpegVideo(OpenTitles[0], H264)
	b := FFmpegVideo(OpenTitles[0], H264)
	for li := range a.Tracks {
		for ci := range a.Tracks[li].ChunkSizesBits {
			if a.Tracks[li].ChunkSizesBits[ci] != b.Tracks[li].ChunkSizesBits[ci] {
				t.Fatalf("chunk sizes differ at track %d chunk %d", li, ci)
			}
		}
	}
}

func TestDifferentTitlesDiffer(t *testing.T) {
	a := FFmpegVideo(OpenTitles[0], H264)
	b := FFmpegVideo(OpenTitles[1], H264)
	same := 0
	for ci := range a.Tracks[3].ChunkSizesBits {
		if a.Tracks[3].ChunkSizesBits[ci] == b.Tracks[3].ChunkSizesBits[ci] {
			same++
		}
	}
	if same > a.NumChunks()/10 {
		t.Errorf("%d identical chunk sizes between distinct titles", same)
	}
}

// TestBitrateVariabilityBands checks §2's reported statistics: CoV between
// 0.3 and 0.6 for the four upper tracks (looser lower bound for the calmest
// titles), reduced variability on the two lowest tracks, and peak/average
// ratios within 1.1–2.4.
func TestBitrateVariabilityBands(t *testing.T) {
	for _, v := range Dataset() {
		for li, tr := range v.Tracks {
			cov := tr.CoV()
			p2a := tr.PeakToAvg()
			if li >= 2 {
				if cov < 0.25 || cov > 0.75 {
					t.Errorf("%s track %d CoV %.2f outside [0.25,0.75]", v.ID(), li, cov)
				}
				if p2a < 1.3 || p2a > 2.5 {
					t.Errorf("%s track %d peak/avg %.2f outside [1.3,2.5]", v.ID(), li, p2a)
				}
			} else {
				upper := v.Tracks[3].CoV()
				if cov >= upper {
					t.Errorf("%s low track %d CoV %.2f not below track 3's %.2f", v.ID(), li, cov, upper)
				}
				if p2a < 1.05 || p2a > 2.3 {
					t.Errorf("%s low track %d peak/avg %.2f outside [1.05,2.3]", v.ID(), li, p2a)
				}
			}
		}
	}
}

func TestAverageBitrateNearTarget(t *testing.T) {
	v := FFmpegVideo(OpenTitles[0], H264)
	for li, tr := range v.Tracks {
		if rel := math.Abs(tr.AvgBitrateBps-tr.DeclaredBitrateBps) / tr.DeclaredBitrateBps; rel > 0.02 {
			t.Errorf("track %d achieved avg %.0f deviates %.1f%% from target %.0f",
				li, tr.AvgBitrateBps, 100*rel, tr.DeclaredBitrateBps)
		}
	}
}

func TestH265LowerBitrate(t *testing.T) {
	h4 := FFmpegVideo(OpenTitles[0], H264)
	h5 := FFmpegVideo(OpenTitles[0], H265)
	for li := range h4.Tracks {
		r := h5.Tracks[li].AvgBitrateBps / h4.Tracks[li].AvgBitrateBps
		if math.Abs(r-h265Efficiency) > 0.05 {
			t.Errorf("track %d H.265/H.264 bitrate ratio %.3f, want ~%.2f", li, r, h265Efficiency)
		}
	}
}

func TestCap4xMoreVariable(t *testing.T) {
	v2 := FFmpegVideo(Title{"ED", SciFi}, H264)
	v4 := Cap4xED()
	if v4.Cap != 4 {
		t.Fatalf("Cap4xED cap = %v", v4.Cap)
	}
	// The 4×-capped encode must have a strictly higher peak/avg on the
	// upper tracks: the 2× cap binds for the most complex scenes.
	if p2, p4 := v2.Tracks[4].PeakToAvg(), v4.Tracks[4].PeakToAvg(); p4 <= p2 {
		t.Errorf("4x peak/avg %.2f not above 2x %.2f", p4, p2)
	}
}

func TestCapBindsOnComplexScenes(t *testing.T) {
	v := FFmpegVideo(Title{"ED", SciFi}, H264)
	tr := v.Tracks[3]
	overCap := 0
	for _, s := range tr.ChunkSizesBits {
		if s/v.ChunkDurSec > 2.3*tr.AvgBitrateBps {
			overCap++
		}
	}
	// Renormalization may push a few chunks slightly above the cap, but
	// not far above it.
	if overCap > 0 {
		t.Errorf("%d chunks exceed 2.3x the average under a 2x cap", overCap)
	}
}

func TestComplexityDrivesSize(t *testing.T) {
	v := YouTubeVideo(Title{"ED", SciFi})
	tr := v.Tracks[3]
	// Correlation between complexity and chunk size must be strongly
	// positive: that is the defining property of VBR (§3.1.1).
	var mc, ms float64
	n := float64(v.NumChunks())
	for i := 0; i < v.NumChunks(); i++ {
		mc += v.Complexity[i]
		ms += tr.ChunkSizesBits[i]
	}
	mc /= n
	ms /= n
	var num, vc, vs float64
	for i := 0; i < v.NumChunks(); i++ {
		dc, ds := v.Complexity[i]-mc, tr.ChunkSizesBits[i]-ms
		num += dc * ds
		vc += dc * dc
		vs += ds * ds
	}
	if corr := num / math.Sqrt(vc*vs); corr < 0.85 {
		t.Errorf("complexity-size correlation %.2f, want > 0.85", corr)
	}
}

func TestValidateRejectsBrokenVideos(t *testing.T) {
	good := FFmpegVideo(OpenTitles[0], H264)

	noTracks := *good
	noTracks.Tracks = nil
	if noTracks.Validate() == nil {
		t.Error("video without tracks validated")
	}

	badDur := *good
	badDur.ChunkDurSec = 0
	if badDur.Validate() == nil {
		t.Error("zero chunk duration validated")
	}

	mismatched := *good
	mismatched.Tracks = append([]Track(nil), good.Tracks...)
	mismatched.Tracks[1].ChunkSizesBits = mismatched.Tracks[1].ChunkSizesBits[:10]
	if mismatched.Validate() == nil {
		t.Error("mismatched chunk counts validated")
	}

	unordered := *good
	unordered.Tracks = append([]Track(nil), good.Tracks...)
	unordered.Tracks[0], unordered.Tracks[1] = unordered.Tracks[1], unordered.Tracks[0]
	if unordered.Validate() == nil {
		t.Error("non-ascending bitrates validated")
	}

	badCx := *good
	badCx.Complexity = append([]float64(nil), good.Complexity...)
	badCx.Complexity[0] = 1.5
	if badCx.Validate() == nil {
		t.Error("out-of-range complexity validated")
	}
}

func TestByID(t *testing.T) {
	v := ByID("ED-ffmpeg-h264")
	if v == nil {
		t.Fatal("ByID failed for a dataset video")
	}
	if v.Name != "ED" || v.Codec != H264 || v.Source != FFmpeg {
		t.Errorf("ByID returned wrong video: %s", v.ID())
	}
	if ByID("nope") != nil {
		t.Error("ByID returned a video for an unknown ID")
	}
}

func TestGenerateDefaults(t *testing.T) {
	v := Generate(GenConfig{Name: "X", Genre: Animation})
	if v.ChunkDurSec != 2 || v.Cap != 2 || v.FPS != 24 {
		t.Errorf("defaults not applied: dur=%v cap=%v fps=%v", v.ChunkDurSec, v.Cap, v.FPS)
	}
	if err := v.Validate(); err != nil {
		t.Errorf("default-generated video invalid: %v", err)
	}
}

func TestChunkAccessors(t *testing.T) {
	v := FFmpegVideo(OpenTitles[0], H264)
	if got, want := v.ChunkBitrate(3, 7), v.ChunkSize(3, 7)/v.ChunkDurSec; got != want {
		t.Errorf("ChunkBitrate = %v, want %v", got, want)
	}
	if got, want := v.AvgBitrateBps(2), v.Tracks[2].AvgBitrateBps; got != want {
		t.Errorf("AvgBitrateBps = %v, want %v", got, want)
	}
	if got, want := v.Tracks[3].ChunkBitrate(5, v.ChunkDurSec), v.ChunkBitrate(3, 5); got != want {
		t.Errorf("Track.ChunkBitrate = %v, want %v", got, want)
	}
}

func TestQuickGeneratedVideosAlwaysValid(t *testing.T) {
	genres := []Genre{Animation, SciFi, Sports, Animal, Nature, Action}
	f := func(seed int64, gi uint8, dur2 bool, cap4 bool) bool {
		cfg := GenConfig{
			Name:  "prop",
			Genre: genres[int(gi)%len(genres)],
			Seed:  seed,
			Cap:   2,
		}
		if dur2 {
			cfg.ChunkDurSec = 2
		} else {
			cfg.ChunkDurSec = 5
		}
		if cap4 {
			cfg.Cap = 4
		}
		return Generate(cfg).Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestStringers(t *testing.T) {
	if H264.String() != "h264" || H265.String() != "h265" {
		t.Error("codec strings wrong")
	}
	if FFmpeg.String() != "ffmpeg" || YouTube.String() != "youtube" {
		t.Error("source strings wrong")
	}
	if Codec(9).String() == "" || Source(9).String() == "" || Genre(99).String() == "" {
		t.Error("unknown enum values should still produce a string")
	}
	for g := Animation; g <= Action; g++ {
		if g.String() == "" {
			t.Errorf("genre %d has empty string", g)
		}
	}
}
