package video

import (
	"math"
	"math/rand"
)

// CBR support: the paper's introduction contrasts VBR against constant-
// bitrate encoding, which gives every scene the same bit budget and
// therefore constant bandwidth but *variable quality* — complex scenes
// starve. GenerateCBR builds the CBR counterpart of a VBR encode from the
// same latent complexity process, so the two can be compared head to head
// (the "cbrvbr" experiment reproduces the §1 motivation: VBR achieves
// better quality at the same average bitrate, especially for complex
// scenes).

// GenerateCBR synthesizes a CBR encode of the given config: identical
// ladder and scene content, but per-chunk sizes held at the track target
// with only small encoder jitter (real CBR still breathes a little within
// the VBV window).
func GenerateCBR(cfg GenConfig) *Video {
	if cfg.ChunkDurSec <= 0 {
		cfg.ChunkDurSec = 2
	}
	if cfg.DurationSec <= 0 {
		cfg.DurationSec = 600
	}
	if cfg.FPS <= 0 {
		cfg.FPS = 24
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = seedFor(cfg.Name, cfg.Codec.String(), cfg.Source.String(), "cbr")
	}
	rng := rand.New(rand.NewSource(seed))

	n := int(math.Round(cfg.DurationSec / cfg.ChunkDurSec))
	if n < 1 {
		n = 1
	}
	complexity := ComplexityFor(cfg.Name, cfg.Genre, n, cfg.ChunkDurSec)

	v := &Video{
		Name:        cfg.Name + "-cbr",
		Genre:       cfg.Genre,
		Codec:       cfg.Codec,
		Source:      cfg.Source,
		ChunkDurSec: cfg.ChunkDurSec,
		Cap:         1.0,
		FPS:         cfg.FPS,
		Complexity:  complexity,
	}
	codecF := 1.0
	if cfg.Codec == H265 {
		codecF = h265Efficiency
	}
	for li, res := range Ladder {
		target := h264LadderBitrate[li] * codecF
		sizes := make([]float64, n)
		avg, peak := 0.0, 0.0
		for i := range sizes {
			// ±4% VBV breathing.
			jitter := 1 + 0.04*(2*rng.Float64()-1)
			sizes[i] = target * cfg.ChunkDurSec * jitter
			avg += sizes[i]
			if br := sizes[i] / cfg.ChunkDurSec; br > peak {
				peak = br
			}
		}
		avg /= float64(n) * cfg.ChunkDurSec
		v.Tracks = append(v.Tracks, Track{
			ID:                 li,
			Res:                res,
			AvgBitrateBps:      avg,
			PeakBitrateBps:     peak,
			DeclaredBitrateBps: target,
			ChunkSizesBits:     sizes,
		})
	}
	return v
}

// CBRCounterpart returns the CBR encode matching a generated VBR video.
func CBRCounterpart(v *Video) *Video {
	return GenerateCBR(GenConfig{
		Name:        v.Name,
		Genre:       v.Genre,
		Codec:       v.Codec,
		Source:      v.Source,
		ChunkDurSec: v.ChunkDurSec,
		DurationSec: v.Duration(),
		FPS:         v.FPS,
	})
}
