package video

import (
	"fmt"
	"math"
	"math/rand"
)

// GenConfig controls synthetic VBR encoding of one title.
type GenConfig struct {
	// Name is the title identifier ("ED", "BBB", ...).
	Name string
	// Genre shapes the scene-complexity process.
	Genre Genre
	// Codec selects the ladder bitrates (H.265 gets the efficiency factor).
	Codec Codec
	// Source selects the encoding pipeline defaults.
	Source Source
	// ChunkDurSec is the chunk duration in seconds (2 for FFmpeg, ~5 for YouTube).
	ChunkDurSec float64
	// Cap is the peak/average bitrate cap (2.0 per current HLS guidance;
	// 4.0 for the §6.6 high-variability study).
	Cap float64
	// DurationSec is the content length in seconds (~600 in the paper).
	DurationSec float64
	// FPS is the frame rate (24 for film content, 30 for YouTube captures).
	FPS float64
	// Seed overrides the derived deterministic seed when non-zero.
	Seed int64
}

// genreProfile shapes the scene process per content category.
type genreProfile struct {
	meanSceneSec float64 // average scene length
	cxMean       float64 // average scene complexity
	cxSpread     float64 // scene-to-scene complexity spread
	jitter       float64 // within-scene complexity jitter
}

var genreProfiles = map[Genre]genreProfile{
	Animation: {18, 0.42, 0.26, 0.05},
	SciFi:     {14, 0.48, 0.27, 0.06},
	Sports:    {10, 0.58, 0.24, 0.08},
	Animal:    {16, 0.45, 0.22, 0.05},
	Nature:    {22, 0.40, 0.24, 0.04},
	Action:    {8, 0.60, 0.25, 0.09},
}

// demandShape maps latent complexity in [0,1] to a relative bit demand.
// VBR encoding gives simple scenes fewer bits and complex scenes more bits
// (§3.1.1); the convex shape below, after normalization and capping, yields
// per-track CoV in the paper's reported 0.3–0.6 band, and its tail exceeds
// 2× the mean for the most complex scenes so a 2× cap genuinely binds
// (which is why the 4×-capped encode of §3.3 gives complex scenes more
// bits and higher quality).
func demandShape(c float64) float64 { return 0.25 + 0.60*c + 2.2*c*c }

// variabilityShrink returns the deviation-shrink factor for a track: the two
// lowest tracks exhibit the least bitrate variability because the low bitrate
// bounds how much variability VBR can introduce (§2).
func variabilityShrink(level, numTracks int) float64 {
	switch level {
	case 0:
		return 0.50
	case 1:
		return 0.70
	default:
		return 1.0
	}
}

// Generate synthesizes one VBR video from the config. The result is fully
// deterministic for a given config.
func Generate(cfg GenConfig) *Video {
	if cfg.ChunkDurSec <= 0 {
		cfg.ChunkDurSec = 2
	}
	if cfg.DurationSec <= 0 {
		cfg.DurationSec = 600
	}
	if cfg.Cap <= 0 {
		cfg.Cap = 2.0
	}
	if cfg.FPS <= 0 {
		cfg.FPS = 24
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = seedFor(cfg.Name, cfg.Codec.String(), cfg.Source.String(),
			fmt.Sprintf("%g/%g", cfg.ChunkDurSec, cfg.Cap))
	}
	rng := rand.New(rand.NewSource(seed))

	n := int(math.Round(cfg.DurationSec / cfg.ChunkDurSec))
	if n < 1 {
		n = 1
	}
	// The latent scene content belongs to the title, not the encode: the
	// same raw footage yields the same complexity series regardless of
	// codec or cap (chunk duration changes the sampling granularity, so it
	// stays part of the content key).
	complexity := ComplexityFor(cfg.Name, cfg.Genre, n, cfg.ChunkDurSec)

	v := &Video{
		Name:        cfg.Name,
		Genre:       cfg.Genre,
		Codec:       cfg.Codec,
		Source:      cfg.Source,
		ChunkDurSec: cfg.ChunkDurSec,
		Cap:         cfg.Cap,
		FPS:         cfg.FPS,
		Complexity:  complexity,
	}

	codecF := 1.0
	if cfg.Codec == H265 {
		codecF = h265Efficiency
	}
	for li, res := range Ladder {
		target := h264LadderBitrate[li] * codecF
		sizes := allocate(rng, complexity, target, cfg.ChunkDurSec, cfg.Cap,
			variabilityShrink(li, len(Ladder)))
		avg, peak := 0.0, 0.0
		for _, s := range sizes {
			avg += s
			if br := s / cfg.ChunkDurSec; br > peak {
				peak = br
			}
		}
		avg /= float64(len(sizes)) * cfg.ChunkDurSec
		v.Tracks = append(v.Tracks, Track{
			ID:                 li,
			Res:                res,
			AvgBitrateBps:      avg,
			PeakBitrateBps:     peak,
			DeclaredBitrateBps: target,
			ChunkSizesBits:     sizes,
		})
	}
	return v
}

// ComplexityFor deterministically produces the latent per-chunk scene
// complexity of a title: the content ground truth shared by every encode
// of that title (H.264/H.265, any cap, CBR or VBR).
func ComplexityFor(name string, g Genre, n int, chunkDurSec float64) []float64 {
	seed := seedFor("complexity", name, g.String(), fmt.Sprintf("%g", chunkDurSec))
	return genComplexity(rand.New(rand.NewSource(seed)), g, n, chunkDurSec)
}

// genComplexity produces the latent per-chunk scene complexity series:
// scenes of geometric length with per-scene complexity drawn around the
// genre mean, plus small within-scene AR(1) jitter.
func genComplexity(rng *rand.Rand, g Genre, n int, chunkDurSec float64) []float64 {
	p, ok := genreProfiles[g]
	if !ok {
		p = genreProfiles[Animation]
	}
	out := make([]float64, n)
	i := 0
	jit := 0.0
	for i < n {
		// Scene length in chunks (at least one chunk).
		meanChunks := p.meanSceneSec / chunkDurSec
		length := 1 + int(rng.ExpFloat64()*meanChunks)
		if length < 1 {
			length = 1
		}
		// Scene base complexity: genre mean plus spread, clamped to [0.03, 0.97].
		base := p.cxMean + p.cxSpread*rng.NormFloat64()
		// Occasional hero scenes: very complex action set pieces.
		if rng.Float64() < 0.08 {
			base = 0.78 + 0.15*rng.Float64()
		}
		base = clamp(base, 0.03, 0.97)
		for k := 0; k < length && i < n; k++ {
			jit = 0.7*jit + p.jitter*rng.NormFloat64()
			out[i] = clamp(base+jit, 0, 1)
			i++
		}
	}
	return out
}

// allocate turns the complexity series into per-chunk sizes (bits) for one
// track with the given target average bitrate, applying the cap and the
// low-track variability shrink. Mirrors a two-pass capped-VBR encoder: the
// first pass normalizes total bits to the target average; capping then
// trims peaks and a renormalization pass redistributes the trimmed bits,
// which lets a few chunks exceed the nominal cap slightly, exactly as the
// paper observes for FFmpeg's -maxrate/-bufsize output.
func allocate(rng *rand.Rand, complexity []float64, targetAvg, chunkDurSec, cap, shrink float64) []float64 {
	n := len(complexity)
	d := make([]float64, n)
	sum := 0.0
	for i, c := range complexity {
		// Per-chunk encoder noise: scene cuts, reference-frame luck.
		noise := math.Exp(0.05 * rng.NormFloat64())
		d[i] = demandShape(c) * noise
		sum += d[i]
	}
	mean := sum / float64(n)
	// Normalize to mean 1, shrink deviations for low tracks.
	for i := range d {
		d[i] = 1 + shrink*(d[i]/mean-1)
		if d[i] < 0.1 {
			d[i] = 0.1
		}
	}
	// Cap pass: VBV-style limit at cap× the average.
	capped := 0.0
	sum = 0
	for i := range d {
		if d[i] > cap {
			capped += d[i] - cap
			d[i] = cap
		}
		sum += d[i]
	}
	// Redistribute trimmed bits proportionally (renormalize to mean 1).
	// This can push a few chunks slightly above the cap, matching reality.
	scale := float64(n) / sum
	for i := range d {
		d[i] *= scale
	}
	out := make([]float64, n)
	for i := range d {
		out[i] = targetAvg * chunkDurSec * d[i]
	}
	return out
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
