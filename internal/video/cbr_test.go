package video

import (
	"math"
	"testing"
)

func TestGenerateCBRValid(t *testing.T) {
	v := GenerateCBR(GenConfig{Name: "ED", Genre: SciFi, Codec: H264, Source: FFmpeg})
	if err := v.Validate(); err != nil {
		t.Fatalf("CBR video invalid: %v", err)
	}
	if v.Name != "ED-cbr" {
		t.Errorf("name = %q", v.Name)
	}
}

func TestCBRNearConstantBitrate(t *testing.T) {
	v := GenerateCBR(GenConfig{Name: "ED", Genre: SciFi, Codec: H264, Source: FFmpeg})
	for li, tr := range v.Tracks {
		if cov := tr.CoV(); cov > 0.05 {
			t.Errorf("CBR track %d CoV %.3f; should be nearly constant", li, cov)
		}
		if p2a := tr.PeakToAvg(); p2a > 1.1 {
			t.Errorf("CBR track %d peak/avg %.3f", li, p2a)
		}
	}
}

func TestCBRSharesComplexityWithVBR(t *testing.T) {
	cfg := GenConfig{Name: "ED", Genre: SciFi, Codec: H264, Source: FFmpeg, ChunkDurSec: 2}
	vbr := Generate(cfg)
	cbr := GenerateCBR(cfg)
	if len(vbr.Complexity) != len(cbr.Complexity) {
		t.Fatal("chunk counts differ")
	}
	for i := range vbr.Complexity {
		if vbr.Complexity[i] != cbr.Complexity[i] {
			t.Fatalf("complexity differs at chunk %d: same title must share scene content", i)
		}
	}
}

func TestComplexitySharedAcrossCodecsAndCaps(t *testing.T) {
	// The same raw footage underlies every encode of a title: H.264,
	// H.265 and the 4x-capped variant must share the complexity series.
	h4 := FFmpegVideo(Title{"ED", SciFi}, H264)
	h5 := FFmpegVideo(Title{"ED", SciFi}, H265)
	c4 := Cap4xED()
	for i := range h4.Complexity {
		if h4.Complexity[i] != h5.Complexity[i] {
			t.Fatal("H.264 and H.265 encodes diverge in content")
		}
		if h4.Complexity[i] != c4.Complexity[i] {
			t.Fatal("2x and 4x encodes diverge in content")
		}
	}
}

func TestCBRCounterpartMatchesLadder(t *testing.T) {
	vbr := FFmpegVideo(Title{"BBB", Animation}, H264)
	cbr := CBRCounterpart(vbr)
	if cbr.NumChunks() != vbr.NumChunks() || cbr.NumTracks() != vbr.NumTracks() {
		t.Fatal("CBR counterpart dimensions differ")
	}
	for li := range vbr.Tracks {
		rel := math.Abs(cbr.AvgBitrateBps(li)-vbr.AvgBitrateBps(li)) / vbr.AvgBitrateBps(li)
		if rel > 0.03 {
			t.Errorf("track %d average bitrate differs by %.1f%%", li, rel*100)
		}
	}
	for i := range vbr.Complexity {
		if vbr.Complexity[i] != cbr.Complexity[i] {
			t.Fatal("counterpart content differs")
		}
	}
}
