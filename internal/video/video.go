// Package video models VBR-encoded ABR videos: tracks, chunks, per-chunk
// sizes, and the latent scene-complexity process that drives them.
//
// The CAVA paper's dataset consists of 16 roughly 10-minute videos, each
// with six tracks (144p–1080p): 8 encoded by YouTube (H.264, ~5-second
// chunks) and 8 encoded with FFmpeg following Netflix's per-title three-pass
// recipe (H.264 and H.265, 2-second chunks, 2×-capped VBR). This package
// reproduces that dataset synthetically: every video is generated from a
// deterministic seeded scene-complexity process, and chunk sizes follow
// capped-VBR bit allocation so that the statistical properties the paper
// reports hold — per-track coefficient of variation between 0.3 and 0.6,
// peak/average ratios between 1.1× and 2.4×, reduced variability on the two
// lowest tracks, and near-perfect cross-track correlation of relative chunk
// sizes.
package video

import (
	"fmt"
	"hash/fnv"
	"math"
)

// Codec identifies the video codec used for a track family.
type Codec int

// Supported codecs. H.265 achieves the same quality at a substantially
// lower bitrate than H.264; the ladder reflects that.
const (
	H264 Codec = iota
	H265
)

// String returns the conventional codec name.
func (c Codec) String() string {
	switch c {
	case H264:
		return "h264"
	case H265:
		return "h265"
	default:
		return fmt.Sprintf("codec(%d)", int(c))
	}
}

// Source identifies the encoding pipeline a video came from.
type Source int

// Encoding pipelines in the paper's dataset.
const (
	// FFmpeg denotes the Netflix-recipe three-pass encodes: 2-second
	// chunks, explicit 2× cap.
	FFmpeg Source = iota
	// YouTube denotes the commercial-service encodes: ~5-second chunks,
	// observed peak/average between 1.1× and 2.3×.
	YouTube
)

// String returns the pipeline name.
func (s Source) String() string {
	switch s {
	case FFmpeg:
		return "ffmpeg"
	case YouTube:
		return "youtube"
	default:
		return fmt.Sprintf("source(%d)", int(s))
	}
}

// Genre captures the content category, which shapes the scene-complexity
// process (scene lengths, complexity mean and spread).
type Genre int

// Content genres in the dataset.
const (
	Animation Genre = iota
	SciFi
	Sports
	Animal
	Nature
	Action
)

// String returns the genre name.
func (g Genre) String() string {
	switch g {
	case Animation:
		return "animation"
	case SciFi:
		return "scifi"
	case Sports:
		return "sports"
	case Animal:
		return "animal"
	case Nature:
		return "nature"
	case Action:
		return "action"
	default:
		return fmt.Sprintf("genre(%d)", int(g))
	}
}

// Resolution is one rung of the encoding ladder.
type Resolution struct {
	Name          string
	Width, Height int
}

// Ladder is the six-track encoding ladder used throughout the paper
// (144p through 1080p).
var Ladder = []Resolution{
	{"144p", 256, 144},
	{"240p", 426, 240},
	{"360p", 640, 360},
	{"480p", 854, 480},
	{"720p", 1280, 720},
	{"1080p", 1920, 1080},
}

// h264LadderBitrate gives the per-title target average bitrate in bits/sec
// for each ladder rung under H.264, in line with the paper's Fig. 1 ladder.
var h264LadderBitrate = []float64{
	100e3,  // 144p
	250e3,  // 240p
	560e3,  // 360p
	1.10e6, // 480p
	2.60e6, // 720p
	4.80e6, // 1080p
}

// h265Efficiency is the bitrate ratio of H.265 to H.264 at equal quality.
const h265Efficiency = 0.62

// Track is one bitrate/quality rung of a video: a full rendition of the
// content at a fixed resolution, divided into chunks of the video's chunk
// duration.
type Track struct {
	// ID is the 0-based track index (0 = lowest quality).
	ID int
	// Res is the track's encoded resolution.
	Res Resolution
	// AvgBitrateBps is the achieved average bitrate in bits/sec.
	AvgBitrateBps float64
	// PeakBitrateBps is the highest per-chunk bitrate in bits/sec.
	PeakBitrateBps float64
	// DeclaredBitrateBps is the bitrate advertised in the manifest, which for
	// VBR encodes is the encoder's target average.
	DeclaredBitrateBps float64
	// ChunkSizesBits holds the per-chunk size in bits.
	ChunkSizesBits []float64
}

// ChunkBitrate returns the bitrate (bits/sec) of chunk i given the chunk
// playback duration.
func (t *Track) ChunkBitrate(i int, chunkDurSec float64) float64 {
	return t.ChunkSizesBits[i] / chunkDurSec
}

// CoV returns the coefficient of variation of the track's chunk sizes.
func (t *Track) CoV() float64 {
	if len(t.ChunkSizesBits) == 0 {
		return 0
	}
	mean := 0.0
	for _, s := range t.ChunkSizesBits {
		mean += s
	}
	mean /= float64(len(t.ChunkSizesBits))
	if mean == 0 {
		return 0
	}
	ss := 0.0
	for _, s := range t.ChunkSizesBits {
		d := s - mean
		ss += d * d
	}
	return math.Sqrt(ss/float64(len(t.ChunkSizesBits))) / mean
}

// PeakToAvg returns the ratio of peak chunk bitrate to average bitrate.
func (t *Track) PeakToAvg() float64 {
	if t.AvgBitrateBps == 0 {
		return 0
	}
	return t.PeakBitrateBps / t.AvgBitrateBps
}

// Video is a complete ABR-ready VBR video: several tracks of the same
// content plus the latent per-chunk scene complexity that generated them.
//
// The Complexity series is part of the synthetic ground truth (it stands in
// for the raw footage); ABR algorithms must not read it — they only see
// chunk sizes, declared bitrates and (for PANDA/CQ only) quality values, as
// in the DASH/HLS manifests the paper targets.
type Video struct {
	// Name identifies the title (e.g. "ED" for Elephant Dream).
	Name string
	// Genre is the content category.
	Genre Genre
	// Codec is the encoding codec of all tracks.
	Codec Codec
	// Source is the encoding pipeline.
	Source Source
	// ChunkDurSec is the chunk playback duration in seconds.
	ChunkDurSec float64
	// Cap is the configured peak/average bitrate cap (e.g. 2.0).
	Cap float64
	// FPS is the frame rate, used by the quality models.
	FPS float64
	// Complexity holds the latent per-chunk scene complexity in [0,1].
	Complexity []float64
	// Tracks are the renditions in ascending bitrate order.
	Tracks []Track
}

// ID returns a unique identifier combining name, source and codec.
func (v *Video) ID() string {
	return fmt.Sprintf("%s-%s-%s", v.Name, v.Source, v.Codec)
}

// NumChunks returns the number of chunks per track.
func (v *Video) NumChunks() int { return len(v.Complexity) }

// NumTracks returns the number of tracks.
func (v *Video) NumTracks() int { return len(v.Tracks) }

// Duration returns the playback duration in seconds.
func (v *Video) Duration() float64 {
	return float64(v.NumChunks()) * v.ChunkDurSec
}

// ChunkSize returns the size in bits of chunk i at track level.
func (v *Video) ChunkSize(level, i int) float64 {
	return v.Tracks[level].ChunkSizesBits[i]
}

// ChunkBitrate returns the bitrate in bits/sec of chunk i at track level.
func (v *Video) ChunkBitrate(level, i int) float64 {
	return v.Tracks[level].ChunkSizesBits[i] / v.ChunkDurSec
}

// AvgBitrateBps returns track level's average bitrate in bits/sec.
func (v *Video) AvgBitrateBps(level int) float64 { return v.Tracks[level].AvgBitrateBps }

// Validate checks the structural invariants every generated video must
// satisfy: at least one track, equal chunk counts across tracks, ascending
// average bitrates, and positive chunk sizes.
func (v *Video) Validate() error {
	if len(v.Tracks) == 0 {
		return fmt.Errorf("video %s: no tracks", v.ID())
	}
	if v.ChunkDurSec <= 0 {
		return fmt.Errorf("video %s: non-positive chunk duration", v.ID())
	}
	n := v.NumChunks()
	if n == 0 {
		return fmt.Errorf("video %s: no chunks", v.ID())
	}
	prev := 0.0
	for li, t := range v.Tracks {
		if len(t.ChunkSizesBits) != n {
			return fmt.Errorf("video %s: track %d has %d chunks, want %d", v.ID(), li, len(t.ChunkSizesBits), n)
		}
		if t.AvgBitrateBps <= prev {
			return fmt.Errorf("video %s: track %d average bitrate %.0f not above previous %.0f", v.ID(), li, t.AvgBitrateBps, prev)
		}
		prev = t.AvgBitrateBps
		for ci, s := range t.ChunkSizesBits {
			if s <= 0 || math.IsNaN(s) || math.IsInf(s, 0) {
				return fmt.Errorf("video %s: track %d chunk %d has bad size %v", v.ID(), li, ci, s)
			}
		}
	}
	for i, c := range v.Complexity {
		if c < 0 || c > 1 || math.IsNaN(c) {
			return fmt.Errorf("video %s: chunk %d has bad complexity %v", v.ID(), i, c)
		}
	}
	return nil
}

// seedFor derives a stable 64-bit seed from a video identity string.
func seedFor(parts ...string) int64 {
	h := fnv.New64a()
	for _, p := range parts {
		h.Write([]byte(p))
		h.Write([]byte{0})
	}
	return int64(h.Sum64() & 0x7fffffffffffffff)
}
