package fleet

import (
	"fmt"
	"math"
	"runtime"
	"sync/atomic"

	"cava/internal/player"
)

// shard is one worker's slice of the fleet: a contiguous session-id range
// with its own event heap, batch buffer and scalar tallies. Sessions are
// mutually independent, so a shard never reads or writes another shard's
// sessions; the only shared state it touches is immutable (corpus, quality
// tables, Config), atomic (telemetry handles, the progress counter) or
// id-indexed slots it alone owns (the engine's per-session sample slices).
// That makes the shard pass race-free by partition and its output
// independent of scheduling.
type shard struct {
	e     *Engine
	heap  *eventHeap
	batch []int32
	// stepFn is the stepSession method value, bound once here so the hot
	// drain loop passes a prebuilt func value instead of allocating a
	// closure per batch (the zero-alloc-per-event guard holds per shard).
	stepFn func(int32)
	// stepID is the session currently being stepped, read by recoverStep
	// when a panic unwinds the step mid-session.
	stepID int32

	events     int64
	maxDoneSec float64
	completed  int

	// quarantined collects the shard's panic-isolated sessions;
	// lostEvents is their forfeited remainder of the event budget.
	quarantined []Quarantine
	lostEvents  int64

	// progress mirrors events after every batch for the RunContext
	// watchdog, which samples it from the supervisor goroutine.
	progress atomic.Int64
}

// init primes the shard for the session-id range [lo, hi): the heap is
// preallocated to the shard size and seeded with the range's arrivals
// (pushed in id order; arrival times are nondecreasing in id).
func (sh *shard) init(e *Engine, lo, hi int32) {
	size := int(hi - lo)
	sh.e = e
	sh.heap = newEventHeap(size)
	sh.batch = make([]int32, 0, minInt(size, 4096))
	sh.stepFn = sh.stepSession
	for id := lo; id < hi; id++ {
		sh.heap.push(event{wakeSec: e.sessions[id].arrivalSec, id: id})
	}
}

// drain runs the shard to completion, one virtual instant at a time. A
// supervised run (ctl non-nil) additionally checks the control barrier
// between batches — parking for checkpoints, returning early on abort —
// and publishes its event progress for the watchdog.
func (sh *shard) drain(ctl *control) {
	if ctl == nil {
		for sh.heap.len() > 0 {
			sh.runBatch()
		}
		return
	}
	for sh.heap.len() > 0 {
		if !ctl.gate() {
			return
		}
		sh.runBatch()
		sh.progress.Store(sh.events)
	}
	sh.progress.Store(shardFinished)
	ctl.shardDone()
}

// runBatch fully drains the earliest pending virtual instant: every event
// due then — including sessions re-woken at that same instant by a
// zero-duration step — is processed before the shard's clock moves on, in
// rounds of ascending session id (see drainInstant).
func (sh *shard) runBatch() {
	sh.batch = drainInstant(sh.heap, sh.batch, sh.stepFn)
}

// stepSession advances one session by one chunk event. It is the panic
// isolation boundary: a panic anywhere inside the step is recovered by the
// deferred recoverStep, which quarantines the offending session so the
// shard's drain loop — and the rest of the fleet — keeps running.
func (sh *shard) stepSession(id int32) {
	sh.stepID = id
	defer sh.recoverStep()
	sh.advanceSession(id)
}

// advanceSession performs the actual chunk step and reschedules or
// finalizes the session.
func (sh *shard) advanceSession(id int32) {
	e := sh.e
	s := &e.sessions[id]
	if !s.started {
		// Lazy start: the algorithm instance is built at the session's
		// first event, so construction cost follows the arrival process
		// instead of front-loading New, and completed sessions can be
		// released while later arrivals are still warming up.
		s.step.Init(s.v, s.v.ID(), s.tr.ID, e.cfg.Scheme.New(s.v), e.cfg.Player, e.cfg.Collect)
		s.step.LimitChunks(e.cfg.MaxChunks)
		s.started = true
		e.mActive.Add(1)
	}
	if hook := e.cfg.CrashHook; hook != nil {
		hook(id, s.step.Chunk)
	}
	wakeSec := s.step.Advance(s.tr, s.offsetSec)
	sh.events++
	e.mEvents.Inc()
	observeChunk(s)
	if s.step.Done() {
		sh.finishSession(id, s)
		return
	}
	sh.heap.push(event{wakeSec: s.arrivalSec + wakeSec, id: id})
}

// recoverStep converts a panic inside the current session's step into a
// quarantine record: the session is retired without rescheduling, its
// unprocessed remainder of the event budget is deducted from the
// accounting, and its per-session state is released. Everything else about
// the run — other sessions, other shards, the final distributions over the
// surviving population — proceeds as if the session never existed past its
// last completed chunk.
func (sh *shard) recoverStep() {
	r := recover()
	if r == nil {
		return
	}
	e := sh.e
	id := sh.stepID
	s := &e.sessions[id]
	buf := make([]byte, 64<<10)
	buf = buf[:runtime.Stack(buf, false)]
	sh.quarantined = append(sh.quarantined, Quarantine{
		SessionID: id,
		Chunk:     s.chunks,
		Reason:    fmt.Sprint(r),
		Stack:     string(buf),
	})
	sh.lostEvents += int64(e.chunkBudget(id) - s.chunks)
	s.quarantined = true
	if s.started {
		e.mActive.Add(-1)
	}
	e.mQuarantined.Inc()
	s.step = player.StepState{}
}

// observeChunk folds the just-completed chunk into the session's online
// aggregates — the fleet-scale replacement for per-chunk records.
func observeChunk(s *session) {
	rec := &s.step.Rec
	q := s.qt.At(rec.Level, rec.Index)
	if s.chunks > 0 {
		if rec.Level != s.lastLevel {
			s.switches++
		}
		s.qualChangeSum += math.Abs(q - s.lastQual)
	}
	s.lastLevel = rec.Level
	s.lastQual = q
	s.levelSum += rec.Level
	s.qualSum += q
	s.chunks++
}

// finishSession writes the session's distribution samples into its
// id-indexed slots and releases its per-session state (algorithm,
// predictor) back to the collector.
func (sh *shard) finishSession(id int32, s *session) {
	e := sh.e
	res := s.step.Take()
	doneSec := s.arrivalSec + res.SessionSec
	if doneSec > sh.maxDoneSec {
		sh.maxDoneSec = doneSec
	}
	e.rebufferSec[id] = res.TotalRebufferSec
	e.startupSec[id] = res.StartupDelaySec
	e.completionSec[id] = doneSec
	e.sessionLenSec[id] = res.SessionSec
	e.dataMB[id] = res.TotalBits / 8 / 1e6
	chunks := float64(maxInt(s.chunks, 1))
	e.avgQuality[id] = s.qualSum / chunks
	e.qualityChange[id] = s.qualChangeSum / chunks
	e.avgLevel[id] = float64(s.levelSum) / chunks
	e.switches[id] = float64(s.switches)
	s.done = true
	sh.completed++
	e.mCompleted.Inc()
	e.mActive.Add(-1)
	if e.cfg.Collect {
		e.results[id] = res
		return
	}
	// Drop the algorithm, predictor and step state; at fleet scale the
	// arrived-but-unfinished working set is what bounds peak RSS.
	s.step = player.StepState{}
}
