package fleet

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/fnv"
	"io"
	"math"
	"os"
	"path/filepath"

	"cava/internal/cache"
)

// Checkpoint format. A checkpoint is a consistent cut of a quiescent
// engine: every shard is parked at a batch boundary (or drained), so no
// session is mid-step and per-session state is stable. Because sessions
// are mutually independent and every session's trajectory is a pure
// function of the Config (seeded assignment + deterministic chunk steps),
// the snapshot does not serialize opaque algorithm or predictor state at
// all. It records only per-session *progress*:
//
//   - pending sessions (first event not yet fired): nothing — the arrival
//     is re-derived from the seed;
//   - in-flight sessions: the number of chunk events completed plus the
//     bit pattern of the pending wakeup time. Resume re-runs exactly that
//     many Advance calls against the same video/trace/offset, which
//     reconstructs the algorithm, predictor and player state bit-for-bit;
//     the stored wakeup doubles as a self-check that the replay really did
//     land where the original run was (any divergence fails the resume);
//   - done sessions: the event count and the session's nine distribution
//     samples by bit pattern — no replay needed;
//   - quarantined sessions: the recorded Quarantine plus the chunks they
//     completed before panicking, so lost-event accounting survives.
//
// The file is little-endian binary: an 8-byte magic, the config
// fingerprint, the session count, one tagged record per session, and a
// trailing FNV-64a checksum over everything before it. Writes go to a
// temp file in the target directory and rename into place, so a torn
// write can never be mistaken for a checkpoint; a flipped bit fails the
// checksum and the resume.
//
// Replay cost is bounded by the concurrent working set (sessions arrived
// but unfinished at the cut), not the fleet: a million-session run with
// 50k concurrent sessions replays 50k partial sessions and restores the
// rest from samples.
//
// Telemetry is process-local and is not restored: counters on a resumed
// engine cover post-resume work only, while the fleet_sessions_active
// gauge is re-raised for replayed in-flight sessions so it drains back to
// zero as they finish.

// CheckpointFile is the checkpoint's file name inside the checkpoint
// directory.
const CheckpointFile = "fleet.ckpt"

// CheckpointPath returns the checkpoint file path for a checkpoint
// directory.
func CheckpointPath(dir string) string { return filepath.Join(dir, CheckpointFile) }

// ckptMagic identifies the format; bump the trailing digit on any layout
// change so stale files are rejected up front.
const ckptMagic = "cavaflt1"

// Per-session record tags.
const (
	ckptPending     = 0 // no fields
	ckptInflight    = 1 // eventsDone u64, wakeBits u64
	ckptDone        = 2 // eventsDone u64, 9 sample bit patterns
	ckptQuarantined = 3 // chunksDone u64, chunk u64, reason str, stack str
)

// configFingerprint digests every Config field that determines a session's
// trajectory: the corpus content, the scheme identity, the seed and
// arrival process, truncation and the player constants. Workers is
// deliberately excluded — a checkpoint may be resumed at any worker count,
// exactly as a fresh run may use any — as are Cache/Metrics/Collect/
// CrashHook, which affect observation, not trajectories.
func configFingerprint(cfg Config) string {
	h := cache.NewHasher("fleet-ckpt-v1")
	h.I64(int64(len(cfg.Videos)))
	for _, v := range cfg.Videos {
		h.Str(cache.VideoFingerprint(v))
	}
	h.I64(int64(len(cfg.Traces)))
	for _, tr := range cfg.Traces {
		h.Str(cache.TraceFingerprint(tr))
	}
	h.Str(cfg.Scheme.Key).Str(cfg.Scheme.Name)
	h.I64(int64(cfg.Sessions)).I64(cfg.Seed)
	h.F64(cfg.ArrivalRatePerSec)
	off := int64(0)
	if cfg.RandomTraceOffsets {
		off = 1
	}
	h.I64(off).I64(int64(cfg.MaxChunks)).I64(int64(cfg.Metric))
	h.F64(cfg.Player.StartupSec).F64(cfg.Player.MaxBufferSec)
	return h.Sum()
}

// ckptWriter serializes little-endian fields while folding every byte into
// a running FNV-64a sum; the first write error sticks.
type ckptWriter struct {
	w   io.Writer
	sum hash.Hash64
	buf [8]byte
	err error
}

func newCkptWriter(w io.Writer) *ckptWriter {
	return &ckptWriter{w: w, sum: fnv.New64a()}
}

func (w *ckptWriter) raw(p []byte) {
	if w.err != nil {
		return
	}
	w.sum.Write(p)
	_, w.err = w.w.Write(p)
}

func (w *ckptWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:], v)
	w.raw(w.buf[:8])
}

func (w *ckptWriter) u8(v uint8) {
	w.buf[0] = v
	w.raw(w.buf[:1])
}

func (w *ckptWriter) str(s string) {
	w.u64(uint64(len(s)))
	w.raw([]byte(s))
}

// trailer appends the checksum (not folded into itself).
func (w *ckptWriter) trailer() {
	if w.err != nil {
		return
	}
	binary.LittleEndian.PutUint64(w.buf[:], w.sum.Sum64())
	_, w.err = w.w.Write(w.buf[:8])
}

// ckptReader parses a checksum-verified checkpoint body.
type ckptReader struct {
	data []byte
	off  int
	err  error
}

func (r *ckptReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || r.off+n > len(r.data) {
		r.err = fmt.Errorf("truncated record at byte %d", r.off)
		return nil
	}
	p := r.data[r.off : r.off+n]
	r.off += n
	return p
}

func (r *ckptReader) u64() uint64 {
	p := r.take(8)
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

func (r *ckptReader) u8() uint8 {
	p := r.take(1)
	if r.err != nil {
		return 0
	}
	return p[0]
}

func (r *ckptReader) str() string {
	n := r.u64()
	if r.err == nil && n > uint64(len(r.data)-r.off) {
		r.err = fmt.Errorf("string length %d overruns file at byte %d", n, r.off)
	}
	return string(r.take(int(n)))
}

// writeCheckpoint snapshots the engine into dir atomically. The engine
// must be quiescent: drained, or every shard parked at the control
// barrier (RunContext guarantees this). The write lands as a temp file
// first and renames over CheckpointFile, replacing any previous snapshot
// only once the new one is durably complete.
func (e *Engine) writeCheckpoint(dir string) (err error) {
	if e.cfg.Collect {
		return fmt.Errorf("fleet: checkpoint with Collect set (per-chunk records are not snapshotted)")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("fleet: checkpoint dir: %w", err)
	}

	// Harvest the pending wakeup of every live session from the shard
	// heaps (each alive session has exactly one scheduled event).
	wakeBits := make(map[int32]uint64)
	for i := range e.shards {
		for _, ev := range e.shards[i].heap.ev {
			wakeBits[ev.id] = math.Float64bits(ev.wakeSec)
		}
	}
	// Quarantine records by session id, for the tagged records below.
	quarantines := make(map[int32]*Quarantine)
	for i := range e.shards {
		qs := e.shards[i].quarantined
		for j := range qs {
			quarantines[qs[j].SessionID] = &qs[j]
		}
	}

	f, err := os.CreateTemp(dir, CheckpointFile+".tmp*")
	if err != nil {
		return fmt.Errorf("fleet: checkpoint temp: %w", err)
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			_ = f.Close()      // best-effort cleanup; the write error wins
			_ = os.Remove(tmp) // best-effort cleanup of the temp file
		}
	}()

	bw := bufio.NewWriterSize(f, 1<<16)
	w := newCkptWriter(bw)
	w.raw([]byte(ckptMagic))
	w.str(configFingerprint(e.cfg))
	w.u64(uint64(e.cfg.Sessions))
	for id := range e.sessions {
		s := &e.sessions[id]
		switch {
		case s.quarantined:
			q := quarantines[int32(id)]
			if q == nil {
				return fmt.Errorf("fleet: checkpoint: session %d quarantined without a record", id)
			}
			w.u8(ckptQuarantined)
			w.u64(uint64(s.chunks))
			w.u64(uint64(q.Chunk))
			w.str(q.Reason)
			w.str(q.Stack)
		case s.done:
			w.u8(ckptDone)
			w.u64(uint64(s.chunks))
			for _, xs := range e.sampleFields() {
				w.u64(math.Float64bits(xs[id]))
			}
		case s.started:
			bits, ok := wakeBits[int32(id)]
			if !ok {
				return fmt.Errorf("fleet: checkpoint: live session %d has no scheduled event", id)
			}
			w.u8(ckptInflight)
			w.u64(uint64(s.chunks))
			w.u64(bits)
		default:
			w.u8(ckptPending)
		}
	}
	w.trailer()
	if w.err != nil {
		return fmt.Errorf("fleet: checkpoint write: %w", w.err)
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("fleet: checkpoint flush: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("fleet: checkpoint sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("fleet: checkpoint close: %w", err)
	}
	if err := os.Rename(tmp, CheckpointPath(dir)); err != nil {
		return fmt.Errorf("fleet: checkpoint rename: %w", err)
	}
	return nil
}

// sampleFields returns the nine id-indexed sample slices in their fixed
// serialization (and Result) order.
func (e *Engine) sampleFields() [9][]float64 {
	return [9][]float64{
		e.rebufferSec, e.startupSec, e.completionSec, e.sessionLenSec,
		e.avgQuality, e.qualityChange, e.avgLevel, e.switches, e.dataMB,
	}
}

// Resume builds an engine for cfg and restores it from the checkpoint in
// dir. The config must describe the same run that wrote the checkpoint
// (verified by fingerprint) except for Workers, which may differ: the
// restored run's final Result is bit-identical to an uninterrupted run of
// cfg at any worker count. In-flight sessions are reconstructed by
// deterministic replay of their completed chunks; a replay that does not
// land on the checkpointed wakeup bit-for-bit fails the resume rather
// than continuing a diverged run.
func Resume(cfg Config, dir string) (*Engine, error) {
	if cfg.Collect {
		return nil, fmt.Errorf("fleet: Resume with Collect set (checkpoints do not hold per-chunk records)")
	}
	data, err := os.ReadFile(CheckpointPath(dir))
	if err != nil {
		return nil, fmt.Errorf("fleet: resume: %w", err)
	}
	if len(data) < len(ckptMagic)+8 {
		return nil, fmt.Errorf("fleet: resume: checkpoint too short (%d bytes)", len(data))
	}
	body, tail := data[:len(data)-8], data[len(data)-8:]
	sum := fnv.New64a()
	sum.Write(body)
	if got, want := sum.Sum64(), binary.LittleEndian.Uint64(tail); got != want {
		return nil, fmt.Errorf("fleet: resume: checksum mismatch (file %016x, computed %016x): checkpoint corrupt", want, got)
	}
	r := &ckptReader{data: body}
	if magic := string(r.take(len(ckptMagic))); r.err == nil && magic != ckptMagic {
		return nil, fmt.Errorf("fleet: resume: bad magic %q", magic)
	}
	if fp := r.str(); r.err == nil && fp != configFingerprint(cfg) {
		return nil, fmt.Errorf("fleet: resume: config fingerprint mismatch: checkpoint was written by a different run configuration")
	}
	if count := r.u64(); r.err == nil && count != uint64(cfg.Sessions) {
		return nil, fmt.Errorf("fleet: resume: checkpoint holds %d sessions, config wants %d", count, cfg.Sessions)
	}
	if r.err != nil {
		return nil, fmt.Errorf("fleet: resume: %w", r.err)
	}

	e, err := New(cfg)
	if err != nil {
		return nil, err
	}
	// The shards were primed with every session's arrival; rebuild the
	// heaps from the snapshot instead (pending arrivals re-enter below).
	for i := range e.shards {
		e.shards[i].heap.ev = e.shards[i].heap.ev[:0]
	}

	n := cfg.Sessions
	p := len(e.shards)
	shardIdx := 0
	hiID := int32(n * 1 / p)
	for id := 0; id < n; id++ {
		for int32(id) >= hiID {
			shardIdx++
			hiID = int32(n * (shardIdx + 1) / p)
		}
		sh := &e.shards[shardIdx]
		s := &e.sessions[id]
		switch tag := r.u8(); {
		case r.err != nil:
			return nil, fmt.Errorf("fleet: resume: session %d: %w", id, r.err)

		case tag == ckptPending:
			sh.heap.push(event{wakeSec: s.arrivalSec, id: int32(id)})

		case tag == ckptInflight:
			eventsDone := r.u64()
			storedBits := r.u64()
			if r.err != nil {
				return nil, fmt.Errorf("fleet: resume: session %d: %w", id, r.err)
			}
			budget := uint64(e.chunkBudget(int32(id)))
			if eventsDone == 0 || eventsDone >= budget {
				return nil, fmt.Errorf("fleet: resume: session %d: in-flight with %d of %d events done", id, eventsDone, budget)
			}
			if err := e.replaySession(sh, int32(id), int(eventsDone), storedBits); err != nil {
				return nil, err
			}

		case tag == ckptDone:
			eventsDone := r.u64()
			var bits [9]uint64
			for i := range bits {
				bits[i] = r.u64()
			}
			if r.err != nil {
				return nil, fmt.Errorf("fleet: resume: session %d: %w", id, r.err)
			}
			s.done = true
			s.chunks = int(eventsDone)
			for i, xs := range e.sampleFields() {
				xs[id] = math.Float64frombits(bits[i])
			}
			if doneSec := e.completionSec[id]; doneSec > sh.maxDoneSec {
				sh.maxDoneSec = doneSec
			}
			sh.events += int64(eventsDone)
			sh.completed++

		case tag == ckptQuarantined:
			chunksDone := r.u64()
			chunk := r.u64()
			reason := r.str()
			stack := r.str()
			if r.err != nil {
				return nil, fmt.Errorf("fleet: resume: session %d: %w", id, r.err)
			}
			s.quarantined = true
			s.chunks = int(chunksDone)
			sh.quarantined = append(sh.quarantined, Quarantine{
				SessionID: int32(id),
				Chunk:     int(chunk),
				Reason:    reason,
				Stack:     stack,
			})
			sh.events += int64(chunksDone)
			sh.lostEvents += int64(e.chunkBudget(int32(id))) - int64(chunksDone)

		default:
			return nil, fmt.Errorf("fleet: resume: session %d: unknown record tag %d", id, tag)
		}
	}
	if r.off != len(r.data) {
		return nil, fmt.Errorf("fleet: resume: %d trailing bytes after last session record", len(r.data)-r.off)
	}
	return e, nil
}

// replaySession reconstructs one in-flight session by re-running its
// completed chunk steps. The step core is a deterministic function of
// (video, trace, offset, player config, scheme), so eventsDone Advance
// calls rebuild the algorithm, predictor and buffer state the original
// process held at the cut; the resulting pending wakeup must match the
// checkpointed bits exactly or the resume is refused.
func (e *Engine) replaySession(sh *shard, id int32, eventsDone int, storedBits uint64) error {
	s := &e.sessions[id]
	s.step.Init(s.v, s.v.ID(), s.tr.ID, e.cfg.Scheme.New(s.v), e.cfg.Player, false)
	s.step.LimitChunks(e.cfg.MaxChunks)
	s.started = true
	e.mActive.Add(1)
	var wakeSec float64
	for k := 0; k < eventsDone; k++ {
		if s.step.Done() {
			return fmt.Errorf("fleet: resume: session %d finished after %d of %d replayed events: checkpoint does not match deterministic replay", id, k, eventsDone)
		}
		wakeSec = s.step.Advance(s.tr, s.offsetSec)
		observeChunk(s)
	}
	if s.step.Done() {
		return fmt.Errorf("fleet: resume: session %d done after replaying %d events but checkpointed in-flight", id, eventsDone)
	}
	absWakeSec := s.arrivalSec + wakeSec
	if math.Float64bits(absWakeSec) != storedBits {
		return fmt.Errorf("fleet: resume: session %d: replayed wakeup %v does not match deterministic replay of the checkpointed run (stored bits %016x, got %016x)",
			id, absWakeSec, storedBits, math.Float64bits(absWakeSec))
	}
	sh.heap.push(event{wakeSec: absWakeSec, id: id})
	sh.events += int64(eventsDone)
	return nil
}
