package fleet

import (
	"context"
	"errors"
	"os"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"cava/internal/telemetry"
	"cava/internal/trace"
	"cava/internal/video"
)

// ckptTestConfig is the shared checkpoint-test fleet: a mixed corpus with
// random offsets and Poisson arrivals, so the snapshot has to carry real
// per-session diversity (different videos, trace rotations, start times).
func ckptTestConfig() Config {
	return Config{
		Videos: []*video.Video{shortVideo(), video.Generate(video.GenConfig{
			Name: "fleet-ckpt-2", Genre: video.Sports,
			ChunkDurSec: 2, DurationSec: 80, Seed: 11,
		})},
		Traces:             []*trace.Trace{trace.GenLTE(0), trace.GenLTE(1), trace.GenFCC(0)},
		Scheme:             fixedScheme(2),
		Sessions:           40,
		ArrivalRatePerSec:  1.5,
		RandomTraceOffsets: true,
		Seed:               42,
	}
}

// TestFleetKillResumeEquivalence is the tentpole contract: a fleet
// checkpointed at an arbitrary event count and resumed — at any worker
// count — finishes with a Result bit-identical to the uninterrupted run.
// The cut points cover "nothing started", "mid-flight", and "almost done";
// the single-shard engine is stepped by hand so each cut lands at an exact,
// reproducible event count.
func TestFleetKillResumeEquivalence(t *testing.T) {
	cfg := ckptTestConfig()
	cfg.Workers = 1
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sh := &e.shards[0]
	dir := t.TempDir()
	cuts := []int64{0, 1, 37, e.expectedEvents / 2, e.expectedEvents - 1}
	for _, cut := range cuts {
		for sh.events < cut && sh.heap.len() > 0 {
			sh.runBatch()
		}
		if err := e.writeCheckpoint(dir); err != nil {
			t.Fatalf("cut %d: checkpoint: %v", cut, err)
		}
		for _, p := range []int{1, 2, runtime.GOMAXPROCS(0)} {
			rcfg := cfg
			rcfg.Workers = p
			re, err := Resume(rcfg, dir)
			if err != nil {
				t.Fatalf("cut %d workers %d: resume: %v", cut, p, err)
			}
			got, err := re.Run()
			if err != nil {
				t.Fatalf("cut %d workers %d: run: %v", cut, p, err)
			}
			if !reflect.DeepEqual(want, got) {
				t.Errorf("cut %d workers %d: resumed Result diverges from the uninterrupted run", cut, p)
			}
		}
	}
}

// TestFleetInterruptResumeEquivalence drives the full supervised path: a
// concurrent RunContext is cancelled at a nondeterministic point (the cut
// depends on goroutine scheduling), writes its final checkpoint, and the
// resumed run must STILL be bit-identical to the uninterrupted baseline —
// every consistent cut is a valid restart point.
func TestFleetInterruptResumeEquivalence(t *testing.T) {
	cfg := ckptTestConfig()
	cfg.Workers = 3
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var seen atomic.Int64
	icfg := cfg
	icfg.CrashHook = func(int32, int) {
		if seen.Add(1) == 50 {
			cancel()
		}
	}
	dir := t.TempDir()
	e, err := New(icfg)
	if err != nil {
		t.Fatal(err)
	}
	partial, err := e.RunContext(ctx, RunOptions{CheckpointDir: dir})
	if err == nil {
		// The fleet can win the race and finish before the supervisor sees
		// the cancel; then the run is simply complete and must match.
		if !reflect.DeepEqual(want, partial) {
			t.Error("uninterrupted RunContext diverges from Run")
		}
		return
	}
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("RunContext error = %v, want ErrInterrupted", err)
	}
	if partial == nil || partial.Completed > cfg.Sessions {
		t.Fatalf("interrupted run returned partial %+v", partial)
	}

	re, err := Resume(cfg, dir)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	got, err := re.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("run resumed from an interrupt checkpoint diverges from the uninterrupted run")
	}
}

// TestControlBarrierBackToBackPause pins the barrier against stale parks
// from a previous generation: a pauseAll issued immediately after
// resumeAll (the shape of a pending SIGINT selected right after a
// periodic checkpoint) must not count shards still waking from the prior
// barrier as quiescent. Fake shard workers flag themselves mid-batch;
// the supervisor pauses with no gap after each resume and asserts the
// quiescence contract across a sleep standing in for the checkpoint
// write. A barrier that lets resumeAll return before the previous
// generation drains fails here within a few cycles.
func TestControlBarrierBackToBackPause(t *testing.T) {
	const workers = 4
	ctl := newControl(workers)
	var inBatch [workers]atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for i := 0; i < workers; i++ {
		go func(i int) {
			defer wg.Done()
			for n := 0; n < 200; n++ {
				if !ctl.gate() {
					return
				}
				inBatch[i].Store(true)
				time.Sleep(50 * time.Microsecond)
				inBatch[i].Store(false)
			}
			ctl.shardDone()
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	check := func(cycle int) {
		for i := range inBatch {
			if inBatch[i].Load() {
				t.Fatalf("cycle %d: pauseAll reported quiescence while worker %d is mid-batch (stale parks from the previous generation)", cycle, i)
			}
		}
	}
	running := true
	for cycle := 0; running; cycle++ {
		select {
		case <-done:
			running = false
		default:
		}
		ctl.pauseAll()
		check(cycle)
		time.Sleep(200 * time.Microsecond) // the "checkpoint write"
		check(cycle)
		ctl.resumeAll()
	}
}

// TestFleetRunContextCompletes pins that an unsupervised-looking
// RunContext (no checkpoint dir, no watchdog, background context) is
// observationally identical to Run.
func TestFleetRunContextCompletes(t *testing.T) {
	cfg := ckptTestConfig()
	cfg.Workers = 3
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := e.RunContext(context.Background(), RunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("RunContext result diverges from Run")
	}
}

// TestFleetQuarantine pins panic isolation: a panic injected into one
// session's chunk step retires exactly that session with a structured
// record, the fleet completes the rest, the event accounting closes as
// Events == ExpectedEvents - LostEvents, and the distributions cover only
// the surviving population. The quarantined Result must also be
// worker-count independent (stacks excepted — they name goroutines).
func TestFleetQuarantine(t *testing.T) {
	cfg := ckptTestConfig()
	cfg.Metrics = telemetry.NewRegistry()
	cfg.CrashHook = func(id int32, chunk int) {
		if id == 3 && chunk == 5 {
			panic("injected fault")
		}
	}

	run := func(workers int) *Result {
		c := cfg
		c.Workers = workers
		res, err := Run(c)
		if err != nil {
			t.Fatalf("workers %d: %v", workers, err)
		}
		return res
	}
	res := run(1)

	if res.Completed != cfg.Sessions-1 || len(res.Quarantined) != 1 {
		t.Fatalf("completed %d, quarantined %d; want %d and 1",
			res.Completed, len(res.Quarantined), cfg.Sessions-1)
	}
	q := res.Quarantined[0]
	if q.SessionID != 3 || q.Chunk != 5 {
		t.Errorf("quarantined session %d at chunk %d, want 3 at 5", q.SessionID, q.Chunk)
	}
	if !strings.Contains(q.Reason, "injected fault") {
		t.Errorf("Reason %q does not carry the panic value", q.Reason)
	}
	if !strings.Contains(q.Stack, "advanceSession") {
		t.Errorf("Stack does not reach the panicking step:\n%s", q.Stack)
	}
	if res.Events != res.ExpectedEvents-res.LostEvents {
		t.Errorf("accounting open: events %d, expected %d, lost %d",
			res.Events, res.ExpectedEvents, res.LostEvents)
	}
	if res.LostEvents <= 0 {
		t.Errorf("LostEvents = %d, want > 0 for a mid-session quarantine", res.LostEvents)
	}
	if res.RebufferSec.Len() != cfg.Sessions-1 {
		t.Errorf("distributions hold %d samples, want %d (quarantined slot must not dilute)",
			res.RebufferSec.Len(), cfg.Sessions-1)
	}

	reg := cfg.Metrics
	cfg.Metrics = nil
	multi := run(4)
	clearStacks := func(r *Result) *Result {
		c := *r
		c.Quarantined = append([]Quarantine(nil), r.Quarantined...)
		for i := range c.Quarantined {
			c.Quarantined[i].Stack = ""
		}
		return &c
	}
	if !reflect.DeepEqual(clearStacks(res), clearStacks(multi)) {
		t.Error("quarantined Result differs across worker counts")
	}
	// Counter handles are lookup-or-create: re-asking the registry returns
	// the handle the engine incremented.
	if got := reg.Counter("fleet_sessions_quarantined_total", "").Value(); got != 1 {
		t.Errorf("fleet_sessions_quarantined_total = %d, want 1", got)
	}
}

// TestFleetQuarantineCheckpointResume pins that quarantine records survive
// a checkpoint/resume cycle: the resumed run's Result equals the
// uninterrupted faulted run's, including the Quarantined list (stacks
// compared for presence, not content — the resumed stack is the original
// crash's, the baseline's is a different goroutine's).
func TestFleetQuarantineCheckpointResume(t *testing.T) {
	cfg := ckptTestConfig()
	cfg.Workers = 1
	cfg.CrashHook = func(id int32, chunk int) {
		if id == 7 && chunk == 2 {
			panic("early fault")
		}
	}
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}

	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sh := &e.shards[0]
	// Step until the fault has fired, then some more so the cut has the
	// quarantine plus live in-flight sessions.
	for len(sh.quarantined) == 0 && sh.heap.len() > 0 {
		sh.runBatch()
	}
	for i := 0; i < 10 && sh.heap.len() > 0; i++ {
		sh.runBatch()
	}
	dir := t.TempDir()
	if err := e.writeCheckpoint(dir); err != nil {
		t.Fatal(err)
	}

	rcfg := cfg
	rcfg.CrashHook = nil // the fault already happened; resume replays clean
	re, err := Resume(rcfg, dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := re.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Quarantined) != 1 || got.Quarantined[0].SessionID != 7 || got.Quarantined[0].Stack == "" {
		t.Fatalf("resumed Quarantined = %+v, want session 7 with its original stack", got.Quarantined)
	}
	for _, r := range []*Result{want, got} {
		for i := range r.Quarantined {
			r.Quarantined[i].Stack = ""
		}
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("resumed faulted run diverges from the uninterrupted faulted run")
	}
}

// TestFleetWatchdog pins the no-progress supervisor: a session whose step
// blocks forever must not hang the run — the watchdog fails it with a
// diagnostic naming the stalled shard.
func TestFleetWatchdog(t *testing.T) {
	block := make(chan struct{})
	t.Cleanup(func() { close(block) }) // release the stuck goroutine
	cfg := ckptTestConfig()
	cfg.Sessions = 8
	cfg.Workers = 2
	cfg.CrashHook = func(id int32, chunk int) {
		if id == 0 {
			<-block
		}
	}
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	res, err := e.RunContext(context.Background(), RunOptions{WatchdogSec: 0.05})
	if err == nil {
		t.Fatalf("watchdog did not fire; got result %+v", res)
	}
	if errors.Is(err, ErrInterrupted) {
		t.Fatalf("watchdog returned ErrInterrupted: %v", err)
	}
	for _, wantSub := range []string{"watchdog", "no event progress", "goroutine"} {
		if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("watchdog error missing %q:\n%v", wantSub, err)
		}
	}
	if elapsed := time.Since(start); elapsed > 10*time.Second {
		t.Errorf("watchdog took %v to fire", elapsed)
	}
}

// TestFleetResumeRejections covers every way a checkpoint can be unusable:
// bit rot (checksum), a mismatched run configuration (fingerprint), a
// truncated file, a missing file, and Collect mode. None may produce a
// silently wrong engine.
func TestFleetResumeRejections(t *testing.T) {
	cfg := ckptTestConfig()
	cfg.Workers = 1
	e, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	sh := &e.shards[0]
	for i := 0; i < 40 && sh.heap.len() > 0; i++ {
		sh.runBatch()
	}
	dir := t.TempDir()
	if err := e.writeCheckpoint(dir); err != nil {
		t.Fatal(err)
	}
	path := CheckpointPath(dir)
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	restore := func() {
		if err := os.WriteFile(path, pristine, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	expectErr := func(name, wantSub string, f func() (*Engine, error)) {
		t.Helper()
		if _, err := f(); err == nil {
			t.Errorf("%s: resume succeeded, want error", name)
		} else if !strings.Contains(err.Error(), wantSub) {
			t.Errorf("%s: error %q missing %q", name, err, wantSub)
		}
	}

	corrupt := append([]byte(nil), pristine...)
	corrupt[len(corrupt)/2] ^= 0x40
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	expectErr("flipped bit", "checksum", func() (*Engine, error) { return Resume(cfg, dir) })

	if err := os.WriteFile(path, pristine[:len(pristine)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	expectErr("truncated", "checksum", func() (*Engine, error) { return Resume(cfg, dir) })

	restore()
	expectErr("wrong seed", "fingerprint", func() (*Engine, error) {
		c := cfg
		c.Seed++
		return Resume(c, dir)
	})
	expectErr("wrong truncation", "fingerprint", func() (*Engine, error) {
		c := cfg
		c.MaxChunks = 5
		return Resume(c, dir)
	})
	expectErr("collect mode", "Collect", func() (*Engine, error) {
		c := cfg
		c.Collect = true
		return Resume(c, dir)
	})
	expectErr("missing file", CheckpointFile, func() (*Engine, error) {
		return Resume(cfg, t.TempDir())
	})

	// Control: the pristine file restored above must still resume cleanly.
	if _, err := Resume(cfg, dir); err != nil {
		t.Errorf("pristine checkpoint rejected: %v", err)
	}

	// Writing a checkpoint in Collect mode is refused up front.
	ccfg := cfg
	ccfg.Collect = true
	ce, err := New(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ce.RunContext(context.Background(), RunOptions{CheckpointDir: dir}); err == nil {
		t.Error("RunContext accepted CheckpointDir with Collect set")
	}
}
