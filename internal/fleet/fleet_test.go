package fleet

import (
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"sort"
	"testing"

	"cava/internal/abr"
	"cava/internal/bandwidth"
	"cava/internal/metrics"
	"cava/internal/player"
	"cava/internal/sim"
	"cava/internal/trace"
	"cava/internal/video"
)

// shortVideo is a small deterministic VBR title: 60 chunks keeps a
// 16-scheme equivalence sweep fast while still exercising startup, buffer
// caps and switching.
func shortVideo() *video.Video {
	return video.Generate(video.GenConfig{
		Name: "fleet-test", Genre: video.Animation,
		ChunkDurSec: 2, DurationSec: 120, Seed: 7,
	})
}

func fixedScheme(level int) abr.Scheme {
	return abr.Scheme{Name: "Fixed", New: abr.Fixed(level)}
}

// TestFleetEquivalence pins the tentpole contract: player.Simulate and a
// one-session fleet drive the same StepState core, so their Results must be
// identical — bit for bit, per chunk — for every scheme in the registry.
func TestFleetEquivalence(t *testing.T) {
	v := shortVideo()
	tr := trace.GenLTE(3)
	for _, sc := range sim.SchemeAll() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			want, err := player.Simulate(v, tr, sc.New(v), player.Config{})
			if err != nil {
				t.Fatal(err)
			}
			res, err := Run(Config{
				Videos: []*video.Video{v}, Traces: []*trace.Trace{tr},
				Scheme: sc, Sessions: 1, Collect: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Results) != 1 {
				t.Fatalf("Collect returned %d results, want 1", len(res.Results))
			}
			if !reflect.DeepEqual(want, res.Results[0]) {
				t.Errorf("one-session fleet diverges from player.Simulate\nsim:   %+v\nfleet: %+v",
					want, res.Results[0])
			}
		})
	}
}

// TestFleetSessionsIndependent runs several sessions over one (video, trace)
// pair with no offsets or staggered arrivals: interleaving in the event
// queue must not leak state between sessions, so every per-session Result
// equals the solo Simulate run.
func TestFleetSessionsIndependent(t *testing.T) {
	v := shortVideo()
	tr := trace.GenLTE(5)
	sc := abr.Scheme{Name: "BBA-1", New: func(v *video.Video) abr.Algorithm {
		return abr.NewBBA1(v, 0, 0)
	}}
	want, err := player.Simulate(v, tr, sc.New(v), player.Config{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Videos: []*video.Video{v}, Traces: []*trace.Trace{tr},
		Scheme: sc, Sessions: 5, Collect: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range res.Results {
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("session %d diverges from the solo run despite identical inputs", i)
		}
	}
}

// TestFleetDeterministic pins that a run is a pure function of its Config:
// same seed, same fleet, same aggregates — including with random offsets,
// Poisson arrivals and a mixed corpus in play.
func TestFleetDeterministic(t *testing.T) {
	cfg := Config{
		Videos: []*video.Video{shortVideo(), video.Generate(video.GenConfig{
			Name: "fleet-test-2", Genre: video.Sports,
			ChunkDurSec: 2, DurationSec: 80, Seed: 11,
		})},
		Traces:             []*trace.Trace{trace.GenLTE(0), trace.GenLTE(1), trace.GenFCC(0)},
		Scheme:             fixedScheme(2),
		Sessions:           50,
		ArrivalRatePerSec:  1.5,
		RandomTraceOffsets: true,
		Seed:               42,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("two runs with identical configs diverge")
	}
	c, err := Run(func() Config { cfg.Seed = 43; return cfg }())
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, c) {
		t.Error("changing the seed changed nothing — the seed is not driving assignment")
	}
}

// TestHeapOrdering is the event-queue property test: pops come out sorted
// by (wakeSec, id) regardless of push order.
func TestHeapOrdering(t *testing.T) {
	// A fixed LCG shuffles push order without math/rand (keeps the test
	// reproducible and the package free of unseeded randomness).
	lcg := uint64(12345)
	next := func(n int) int {
		lcg = lcg*6364136223846793005 + 1442695040888963407
		return int(lcg>>33) % n
	}
	evs := make([]event, 0, 200)
	for i := 0; i < 200; i++ {
		evs = append(evs, event{wakeSec: float64(next(17)), id: int32(next(64))})
	}
	h := newEventHeap(len(evs))
	for _, e := range evs {
		h.push(e)
	}
	sort.Slice(evs, func(i, j int) bool { return eventLess(evs[i], evs[j]) })
	for i, want := range evs {
		got := h.pop()
		if got != want {
			t.Fatalf("pop %d = %+v, want %+v", i, got, want)
		}
	}
	if h.len() != 0 {
		t.Fatalf("%d events left after draining", h.len())
	}
}

// TestHeapSimultaneousWakeupsPopInIDOrder pins the deterministic tie-break:
// events due at the same virtual instant drain in session-id order, so a
// batch's decision order never depends on insertion history.
func TestHeapSimultaneousWakeupsPopInIDOrder(t *testing.T) {
	h := newEventHeap(8)
	for _, id := range []int32{5, 1, 7, 0, 3, 6, 2, 4} {
		h.push(event{wakeSec: 12.5, id: id})
	}
	for want := int32(0); want < 8; want++ {
		if got := h.pop(); got.id != want {
			t.Fatalf("simultaneous wakeups popped id %d before %d", got.id, want)
		}
	}
}

// TestFleetSessionsEndMidHeap mixes videos of different lengths so sessions
// finish while others are still queued; the event accounting must close
// exactly (no lost or duplicated wakeups) and every session must complete.
func TestFleetSessionsEndMidHeap(t *testing.T) {
	long := shortVideo()
	short := video.Generate(video.GenConfig{
		Name: "fleet-short", Genre: video.Nature,
		ChunkDurSec: 2, DurationSec: 30, Seed: 3,
	})
	res, err := Run(Config{
		Videos: []*video.Video{long, short},
		Traces: []*trace.Trace{trace.GenLTE(2)},
		Scheme: fixedScheme(1), Sessions: 20, Seed: 9, Collect: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != res.ExpectedEvents {
		t.Errorf("processed %d events, expected %d", res.Events, res.ExpectedEvents)
	}
	lens := map[int]bool{}
	for _, r := range res.Results {
		lens[len(r.Chunks)] = true
	}
	if !lens[long.NumChunks()] || !lens[short.NumChunks()] {
		t.Errorf("expected both %d- and %d-chunk sessions in a 20-session mixed fleet, got lengths %v",
			long.NumChunks(), short.NumChunks(), lens)
	}
}

// TestFleetEmpty pins the zero-session edge: an empty fleet runs and
// returns empty distributions rather than erroring or hanging.
func TestFleetEmpty(t *testing.T) {
	res, err := Run(Config{
		Videos: []*video.Video{shortVideo()},
		Traces: []*trace.Trace{trace.GenLTE(0)},
		Scheme: fixedScheme(0),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sessions != 0 || res.Events != 0 || res.RebufferSec.Len() != 0 {
		t.Errorf("empty fleet produced sessions=%d events=%d samples=%d",
			res.Sessions, res.Events, res.RebufferSec.Len())
	}
}

// TestFleetTraceWraparound starts a session deep into a trace much shorter
// than its video, forcing reads past the end. The run must match a solo
// Simulate over the equivalently rotated trace (the wrap is a rotation) and
// must differ from the unshifted run (proving the offset is applied at all).
func TestFleetTraceWraparound(t *testing.T) {
	v := shortVideo() // 120 s of video over a 60 s trace: two full wraps
	tr := trace.Step("step", 0.3e6, 6e6, 10, 60, 1)
	const k = 17 // offset in samples; IntervalSec is 1

	run := func(offsetSec float64) *player.Result {
		e, err := New(Config{
			Videos: []*video.Video{v}, Traces: []*trace.Trace{tr},
			Scheme: fixedScheme(3), Sessions: 1, Collect: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		e.sessions[0].offsetSec = offsetSec
		res, err := e.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.Results[0]
	}

	rotated := &trace.Trace{ID: tr.ID, IntervalSec: tr.IntervalSec,
		Samples: make([]float64, len(tr.Samples))}
	for i := range tr.Samples {
		rotated.Samples[i] = tr.Samples[(i+k)%len(tr.Samples)]
	}
	want, err := player.Simulate(v, rotated, abr.Fixed(3)(v), player.Config{})
	if err != nil {
		t.Fatal(err)
	}

	got := run(k * tr.IntervalSec)
	// Same integration, but the absolute times inside DownloadTime differ by
	// k seconds, so results agree to rounding rather than bit-for-bit.
	if math.Abs(got.SessionSec-want.SessionSec) > 1e-6 ||
		math.Abs(got.TotalRebufferSec-want.TotalRebufferSec) > 1e-6 {
		t.Errorf("offset %d×%gs: session %.9f/rebuffer %.9f, rotated-trace solo run %.9f/%.9f",
			k, tr.IntervalSec, got.SessionSec, got.TotalRebufferSec,
			want.SessionSec, want.TotalRebufferSec)
	}
	base := run(0)
	if got.SessionSec == base.SessionSec && got.TotalRebufferSec == base.TotalRebufferSec {
		t.Error("offset run identical to unshifted run — trace offset is not applied")
	}
}

// TestFleetArrivalsStagger pins the Poisson arrival process: completion
// times must spread beyond a single session's length, and the fleet's
// virtual-time horizon must cover the last completion.
func TestFleetArrivalsStagger(t *testing.T) {
	v := shortVideo()
	res, err := Run(Config{
		Videos: []*video.Video{v}, Traces: []*trace.Trace{trace.Constant("c", 5e6, 1200, 1)},
		Scheme: fixedScheme(0), Sessions: 30, ArrivalRatePerSec: 0.05, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	spread := res.CompletionSec.Percentile(100) - res.CompletionSec.Percentile(0)
	if spread <= 0 {
		t.Error("staggered arrivals produced identical completion times")
	}
	if res.VirtualSec != res.CompletionSec.Percentile(100) {
		t.Errorf("VirtualSec %v != last completion %v", res.VirtualSec, res.CompletionSec.Percentile(100))
	}
}

// TestFleetValidation covers config rejection: missing corpus pieces,
// negative fleet sizes and a shared per-session predictor.
func TestFleetValidation(t *testing.T) {
	v := shortVideo()
	tr := trace.GenLTE(0)
	ok := Config{Videos: []*video.Video{v}, Traces: []*trace.Trace{tr}, Scheme: fixedScheme(0)}
	for name, mut := range map[string]func(*Config){
		"no videos":         func(c *Config) { c.Videos = nil },
		"no traces":         func(c *Config) { c.Traces = nil },
		"no scheme":         func(c *Config) { c.Scheme = abr.Scheme{} },
		"negative sessions": func(c *Config) { c.Sessions = -1 },
		"invalid trace": func(c *Config) {
			c.Traces = []*trace.Trace{{ID: "bad", IntervalSec: 0}}
		},
		"shared predictor": func(c *Config) {
			c.Sessions = 2
			c.Player.Predictor = bandwidth.NewHarmonicMean(5)
		},
	} {
		cfg := ok
		mut(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: config accepted", name)
		}
	}
	if _, err := New(ok); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

// TestFleetZeroAllocPerEvent is the scale guard: once every session has
// arrived and initialized, advancing the fleet allocates nothing — no
// per-event garbage at 10⁵–10⁶ sessions. The guard drives the whole engine
// path (heap pop/push, Advance, online aggregation), not a mock.
func TestFleetZeroAllocPerEvent(t *testing.T) {
	v := video.Generate(video.GenConfig{
		Name: "fleet-alloc", Genre: video.Animation,
		ChunkDurSec: 2, DurationSec: 600, Seed: 5,
	})
	e, err := New(Config{
		Videos: []*video.Video{v}, Traces: []*trace.Trace{trace.GenLTE(4)},
		Scheme: fixedScheme(2), Sessions: 4, Workers: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	sh := &e.shards[0]
	// Warm-up: lazy session Init (algorithm + predictor construction) and
	// predictor window fill are startup costs, not steady state.
	for i := 0; i < 20 && sh.heap.len() > 0; i++ {
		sh.runBatch()
	}
	allocs := testing.AllocsPerRun(100, func() {
		if sh.heap.len() > 0 {
			sh.runBatch()
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state event batch allocates %v times, want 0", allocs)
	}
	// Drain the remainder: the measured engine must still close its event
	// accounting exactly.
	res, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != res.ExpectedEvents {
		t.Errorf("events %d != expected %d after alloc probe", res.Events, res.ExpectedEvents)
	}
}

// TestFleetShardEquivalence is the sharding contract: the Result — every
// sorted distribution, Events, VirtualSec and the Collect-mode per-session
// Results — is bit-identical for every worker count at a fixed seed. The
// assignment pass is sequential and sessions are mutually independent, so
// partitioning must be unobservable in the output.
func TestFleetShardEquivalence(t *testing.T) {
	cfg := Config{
		Videos: []*video.Video{shortVideo(), video.Generate(video.GenConfig{
			Name: "fleet-shard-2", Genre: video.Sports,
			ChunkDurSec: 2, DurationSec: 80, Seed: 11,
		})},
		Traces:             []*trace.Trace{trace.GenLTE(0), trace.GenLTE(1), trace.GenFCC(0)},
		Scheme:             fixedScheme(2),
		Sessions:           60,
		ArrivalRatePerSec:  1.5,
		RandomTraceOffsets: true,
		Seed:               42,
		Collect:            true,
	}
	cfg.Workers = 1
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 7, runtime.GOMAXPROCS(0), 61} {
		cfg.Workers = p
		got, err := Run(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", p, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("workers=%d diverges from workers=1", p)
		}
	}
}

// TestFleetSoloReference pins the one-worker engine against an independent
// reconstruction of the pre-shard semantics: the test replays the seeded
// assignment pass by hand (same rng draw order), runs each session solo
// through player.Simulate, and rebuilds every distribution. Arrivals only
// shift completion times; per-session trajectories must match the solo
// runs bit for bit.
func TestFleetSoloReference(t *testing.T) {
	videos := []*video.Video{shortVideo(), video.Generate(video.GenConfig{
		Name: "fleet-ref-2", Genre: video.Nature,
		ChunkDurSec: 2, DurationSec: 60, Seed: 21,
	})}
	traces := []*trace.Trace{trace.GenLTE(0), trace.GenFCC(1)}
	const (
		n    = 24
		rate = 2.0
		seed = 99
	)
	sc := fixedScheme(1)
	res, err := Run(Config{
		Videos: videos, Traces: traces, Scheme: sc,
		Sessions: n, ArrivalRatePerSec: rate, Seed: seed,
		Workers: 1, Collect: true,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Identical rng walk to the engine's assignment pass (no offset draw:
	// RandomTraceOffsets is off above).
	rng := rand.New(rand.NewSource(seed))
	arrivalSec := 0.0
	completion := make([]float64, n)
	rebuffer := make([]float64, n)
	for i := 0; i < n; i++ {
		v := videos[rng.Intn(len(videos))]
		tr := traces[rng.Intn(len(traces))]
		if i > 0 {
			arrivalSec += rng.ExpFloat64() / rate
		}
		want, err := player.Simulate(v, tr, sc.New(v), player.Config{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, res.Results[i]) {
			t.Fatalf("session %d diverges from its solo player.Simulate run", i)
		}
		completion[i] = arrivalSec + want.SessionSec
		rebuffer[i] = want.TotalRebufferSec
	}
	if got, want := res.CompletionSec, metrics.NewSorted(completion); !reflect.DeepEqual(got, want) {
		t.Error("completion distribution diverges from the solo reconstruction")
	}
	if got, want := res.RebufferSec, metrics.NewSorted(rebuffer); !reflect.DeepEqual(got, want) {
		t.Error("rebuffer distribution diverges from the solo reconstruction")
	}
}

// TestDrainInstantSameInstantRewake pins the re-wake ordering fix: a
// session re-pushed with a wake time equal to the instant being drained is
// processed in a later round of the *same* drainInstant call — the instant
// completes before the function returns — and later-instant events stay
// queued. The old engine returned after the first round, so a same-instant
// re-wake leaked into a separate batch.
func TestDrainInstantSameInstantRewake(t *testing.T) {
	h := newEventHeap(8)
	for _, id := range []int32{2, 0, 1} {
		h.push(event{wakeSec: 5, id: id})
	}
	h.push(event{wakeSec: 9, id: 3})

	var order []int32
	rewoken := false
	step := func(id int32) {
		order = append(order, id)
		// Session 0's step completes instantaneously once: a zero-duration
		// chunk re-wakes it at the instant being drained.
		if id == 0 && !rewoken {
			rewoken = true
			h.push(event{wakeSec: 5, id: 0})
		}
	}
	drainInstant(h, nil, step)

	// Round 1 is ids 0,1,2 in order; the re-wake forms round 2.
	want := []int32{0, 1, 2, 0}
	if !reflect.DeepEqual(order, want) {
		t.Errorf("instant drained in order %v, want %v", order, want)
	}
	if h.len() != 1 || h.peek().wakeSec != 9 {
		t.Errorf("later-instant event disturbed: %d events left, head %+v", h.len(), h.peek())
	}
}

// TestFleetMaxChunksBudget pins event budgeting under truncation: with
// MaxChunks set, ExpectedEvents is Σ min(MaxChunks, chunks) and sessions
// stop exactly there.
func TestFleetMaxChunksBudget(t *testing.T) {
	v := shortVideo()
	res, err := Run(Config{
		Videos: []*video.Video{v}, Traces: []*trace.Trace{trace.GenLTE(6)},
		Scheme: fixedScheme(1), Sessions: 7, MaxChunks: 9, Collect: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if want := int64(7 * 9); res.ExpectedEvents != want || res.Events != want {
		t.Errorf("events %d/expected %d, want %d", res.Events, res.ExpectedEvents, want)
	}
	for _, r := range res.Results {
		if len(r.Chunks) != 9 {
			t.Fatalf("session ran %d chunks, want 9", len(r.Chunks))
		}
	}
}
