// Package fleet is the discrete-event fleet simulator: up to a million
// concurrent ABR streaming sessions in one process, driven by per-shard
// binary-heap priority queues of (session, wakeup) events over virtual
// time.
//
// Where the chaos harness proves the stack survives N goroutine-per-client
// sessions with real sockets (N in the low hundreds), the fleet engine
// answers the scale question the paper's trace-driven methodology implies:
// what do QoE, rebuffering and switching look like across an entire
// population? Every session runs the same player.StepState core as
// player.Simulate and the DASH testbed client — one simulator, three
// frontends — so a one-session fleet reproduces player.Simulate exactly
// (see TestFleetEquivalence).
//
// Scale comes from four properties:
//
//   - shared immutable data: all sessions read the same video ladders and
//     bandwidth traces, each at its own per-session trace offset (staggered
//     arrivals, wraparound past the corpus end), so per-session memory is a
//     few hundred bytes of state, not a copy of the corpus;
//   - an allocation-free event loop: with chunk retention off and a nil
//     recorder, advancing a session performs zero allocations (guarded by
//     TestFleetZeroAllocPerEvent, which holds per shard), and each shard's
//     event heap is typed and preallocated;
//   - batched decisions: within a shard, all sessions due at the same
//     virtual instant are drained from the heap and decided in rounds of
//     ascending session id (see drainInstant);
//   - sharding: sessions are mutually independent, so the event loop
//     partitions by session id into Config.Workers shards that run
//     concurrently, one heap per shard. The seeded assignment pass stays
//     sequential and per-shard outputs are written to id-indexed slices,
//     so the Result is bit-identical for every worker count
//     (TestFleetShardEquivalence).
//
// Every run is a pure function of Config (seeded rand only, no wall
// clock); the package sits in abrlint's determinism and units analyzer
// sets.
package fleet

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"

	"cava/internal/abr"
	"cava/internal/cache"
	"cava/internal/metrics"
	"cava/internal/player"
	"cava/internal/quality"
	"cava/internal/telemetry"
	"cava/internal/trace"
	"cava/internal/video"
)

// Config describes one fleet run. Videos, Traces and Scheme are required;
// zero values elsewhere select the documented defaults.
type Config struct {
	// Videos is the shared content catalog; each session streams one,
	// assigned by the seeded rng.
	Videos []*video.Video
	// Traces is the shared bandwidth corpus; each session replays one,
	// assigned by the seeded rng.
	Traces []*trace.Trace
	// Scheme is the adaptation algorithm every session runs (one fresh
	// instance per session, built lazily at the session's first event).
	// The factory must be safe for concurrent calls, the same contract
	// sim.Run's worker pool already imposes on every registry scheme.
	Scheme abr.Scheme
	// Player is the shared player configuration (§6.1 defaults when zero).
	Player player.Config
	// Sessions is the fleet size (0 is a valid empty fleet).
	Sessions int
	// Workers is the shard count: sessions are partitioned by id into
	// Workers contiguous shards, each drained on its own goroutine with
	// its own event heap. Sessions are mutually independent and every
	// shard writes only its own sessions' slots of the shared id-indexed
	// aggregates, so the Result is bit-identical for every worker count
	// (pinned by TestFleetShardEquivalence). Non-positive selects
	// runtime.GOMAXPROCS(0).
	Workers int
	// ArrivalRatePerSec staggers session starts as a seeded Poisson
	// process with this mean arrival rate in virtual time; non-positive
	// starts every session at virtual time 0.
	ArrivalRatePerSec float64
	// RandomTraceOffsets starts each session at a seeded uniform offset
	// into its trace (wrapping past the end), decorrelating sessions that
	// share a trace. Off, every session reads its trace from time 0 —
	// required for bit-exact equivalence with player.Simulate.
	RandomTraceOffsets bool
	// Seed drives every random assignment (videos, traces, offsets,
	// arrivals). Same seed, same fleet, same result.
	Seed int64
	// MaxChunks truncates each session after this many chunks (0 = full
	// video), bounding run time for smokes and benchmarks.
	MaxChunks int
	// Metric is the perceptual metric for per-chunk quality accounting
	// (default VMAF TV, matching the paper's FCC evaluation).
	Metric quality.Metric
	// Cache memoizes per-video quality tables across runs (nil computes
	// them directly).
	Cache *cache.Cache
	// Collect retains every session's full per-chunk player.Result —
	// memory grows with sessions × chunks, so this is for equivalence
	// tests and small-fleet debugging, not scale runs.
	Collect bool
	// Metrics, when non-nil, receives fleet_events_total,
	// fleet_sessions_completed_total, fleet_sessions_quarantined_total and
	// the fleet_sessions_active gauge. Counters and gauges are lock-free
	// atomics, so shards update them concurrently without coordination.
	Metrics *telemetry.Registry
	// CrashHook, when non-nil, is invoked immediately before every chunk
	// step with the session id and the chunk index about to be processed.
	// It exists for crash-tolerance testing: a hook that panics exercises
	// the per-shard panic isolation (the session is quarantined and the
	// fleet completes without it), and a hook that blocks starves its
	// shard and trips the RunContext watchdog. The hook is called from
	// shard goroutines concurrently and must be safe for concurrent use.
	CrashHook func(sessionID int32, chunk int)
}

// Quarantine records one session retired by the per-shard panic isolation:
// a panic inside the session's chunk step is recovered, the session is
// dropped from the schedule, and the rest of the fleet completes.
type Quarantine struct {
	// SessionID is the quarantined session's id.
	SessionID int32
	// Chunk is the 0-based index of the chunk whose step panicked.
	Chunk int
	// Reason is the stringified panic value.
	Reason string
	// Stack is the goroutine stack captured at recovery.
	Stack string
}

// Result aggregates a completed fleet run. The distributions hold one
// sample per session, queryable at any percentile via metrics.Sorted.
type Result struct {
	// Sessions is the fleet size; Events counts chunk-step events
	// processed (each session contributes exactly its chunk count).
	Sessions int
	Events   int64
	// ExpectedEvents is Σ per-session chunk counts — the exact event
	// budget of a run with no livelock and no quarantines. LostEvents is
	// the part of that budget forfeited by quarantined sessions, so a
	// healthy run always closes Events == ExpectedEvents - LostEvents.
	ExpectedEvents int64
	LostEvents     int64
	// Completed counts sessions that ran to completion and Quarantined
	// lists sessions retired by panic isolation (ascending session id,
	// nil when none). Completed + len(Quarantined) == Sessions.
	Completed   int
	Quarantined []Quarantine
	// VirtualSec is the fleet virtual time at which the last session
	// completed.
	VirtualSec float64
	// RebufferSec, StartupDelaySec, CompletionSec and SessionLenSec are
	// per-session stall totals, startup delays, completion times (arrival +
	// session length) and session lengths in virtual seconds. SessionLenSec
	// is the starvation signal: a session whose length blows past the
	// content duration is being starved by its trace.
	RebufferSec     metrics.Sorted
	StartupDelaySec metrics.Sorted
	CompletionSec   metrics.Sorted
	SessionLenSec   metrics.Sorted
	// AvgQuality and QualityChange are the per-session mean delivered
	// quality and mean absolute quality change per chunk; AvgLevel and
	// Switches are the mean selected track and the track-switch count.
	AvgQuality    metrics.Sorted
	QualityChange metrics.Sorted
	AvgLevel      metrics.Sorted
	Switches      metrics.Sorted
	// DataMB is per-session downloaded volume in megabytes.
	DataMB metrics.Sorted
	// Results holds the full per-session results when Config.Collect is
	// set, indexed by session id, nil otherwise.
	Results []*player.Result
}

// session is one fleet member: the shared step core plus its corpus
// assignment and the online aggregates that replace per-chunk records.
type session struct {
	step        player.StepState
	v           *video.Video
	tr          *trace.Trace
	qt          *quality.Table
	offsetSec   float64
	arrivalSec  float64
	started     bool
	done        bool
	quarantined bool

	chunks        int
	lastLevel     int
	lastQual      float64
	switches      int
	levelSum      int
	qualSum       float64
	qualChangeSum float64
}

// Engine runs one fleet to completion. It is split into three layers:
//
//   - assignment (New): one sequential pass over the seeded rng gives every
//     session its video, trace, offset and arrival — bit-identical draws
//     regardless of the worker count;
//   - shard pass (Run): the id-partitioned shards drain their event heaps
//     concurrently, each writing only its own sessions' slots of the
//     shared id-indexed sample slices;
//   - merge (Run): per-shard scalar tallies (events, completions, horizon)
//     fold in shard-index order and the id-indexed samples feed the sorted
//     distributions.
type Engine struct {
	cfg            Config
	sessions       []session
	shards         []shard
	expectedEvents int64

	// Per-session samples, indexed by session id and written exactly once
	// by the owning shard — disjoint writes, no synchronization needed,
	// and a merge order that cannot depend on the worker count.
	rebufferSec, startupSec, completionSec, sessionLenSec []float64
	avgQuality, qualityChange                             []float64
	avgLevel, switches, dataMB                            []float64
	results                                               []*player.Result

	mEvents      *telemetry.Counter
	mCompleted   *telemetry.Counter
	mQuarantined *telemetry.Counter
	mCkptWritten *telemetry.Counter
	mCkptErrors  *telemetry.Counter
	mActive      *telemetry.Gauge
}

// New validates the config, assigns every session its video, trace, offset
// and arrival from the seed (sequentially, so the draws are identical for
// every worker count), and partitions the sessions into shards with primed
// event queues.
func New(cfg Config) (*Engine, error) {
	if len(cfg.Videos) == 0 || len(cfg.Traces) == 0 || cfg.Scheme.New == nil {
		return nil, fmt.Errorf("fleet: Config needs Videos, Traces and Scheme")
	}
	if cfg.Sessions < 0 {
		return nil, fmt.Errorf("fleet: negative session count %d", cfg.Sessions)
	}
	if cfg.Sessions > math.MaxInt32 {
		return nil, fmt.Errorf("fleet: session count %d exceeds the int32 event id space", cfg.Sessions)
	}
	if cfg.Sessions > 1 && cfg.Player.Predictor != nil {
		// A Predictor instance is single-session state; sharing one across
		// interleaved sessions would blend their throughput histories. Each
		// session gets its own default predictor when this is nil.
		return nil, fmt.Errorf("fleet: Player.Predictor is per-session state; leave it nil for multi-session fleets")
	}
	for _, v := range cfg.Videos {
		if err := v.Validate(); err != nil {
			return nil, fmt.Errorf("fleet: video %s: %w", v.ID(), err)
		}
	}
	qts := make(map[string]*quality.Table, len(cfg.Videos))
	for _, v := range cfg.Videos {
		qts[v.ID()] = cfg.Cache.QualityTable(v, cfg.Metric)
	}
	for _, tr := range cfg.Traces {
		if err := tr.Validate(); err != nil {
			return nil, fmt.Errorf("fleet: trace %s: %w", tr.ID, err)
		}
	}

	n := cfg.Sessions
	e := &Engine{
		cfg:           cfg,
		sessions:      make([]session, n),
		rebufferSec:   make([]float64, n),
		startupSec:    make([]float64, n),
		completionSec: make([]float64, n),
		sessionLenSec: make([]float64, n),
		avgQuality:    make([]float64, n),
		qualityChange: make([]float64, n),
		avgLevel:      make([]float64, n),
		switches:      make([]float64, n),
		dataMB:        make([]float64, n),
		mEvents:       cfg.Metrics.Counter("fleet_events_total", "fleet chunk-step events processed"),
		mCompleted:    cfg.Metrics.Counter("fleet_sessions_completed_total", "fleet sessions run to completion"),
		mQuarantined:  cfg.Metrics.Counter("fleet_sessions_quarantined_total", "fleet sessions retired by panic isolation"),
		mCkptWritten:  cfg.Metrics.Counter("fleet_checkpoints_written_total", "fleet checkpoints written"),
		mCkptErrors:   cfg.Metrics.Counter("fleet_checkpoint_errors_total", "fleet checkpoint writes that failed"),
		mActive:       cfg.Metrics.Gauge("fleet_sessions_active", "fleet sessions arrived and not yet complete"),
	}
	if cfg.Collect {
		e.results = make([]*player.Result, n)
	}

	// Assignment pass: one sequential walk of the seeded rng, independent
	// of the worker count, so video/trace/offset/arrival draws are
	// bit-identical to the single-goroutine engine's.
	rng := rand.New(rand.NewSource(cfg.Seed))
	arrivalSec := 0.0
	for i := 0; i < n; i++ {
		v := cfg.Videos[rng.Intn(len(cfg.Videos))]
		tr := cfg.Traces[rng.Intn(len(cfg.Traces))]
		offSec := 0.0
		if cfg.RandomTraceOffsets {
			offSec = rng.Float64() * tr.Duration()
		}
		if cfg.ArrivalRatePerSec > 0 && i > 0 {
			arrivalSec += rng.ExpFloat64() / cfg.ArrivalRatePerSec
		}
		e.sessions[i] = session{
			v: v, tr: tr, qt: qts[v.ID()],
			offsetSec: offSec, arrivalSec: arrivalSec,
			lastLevel: -1,
		}
		e.expectedEvents += int64(e.chunkBudget(int32(i)))
	}

	// Shard pass setup: partition [0, n) into contiguous id ranges (cache-
	// friendly: a shard walks a dense slab of the sessions slice).
	p := cfg.Workers
	if p <= 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p > n {
		p = n
	}
	if p < 1 {
		p = 1
	}
	e.shards = make([]shard, p)
	for s := range e.shards {
		e.shards[s].init(e, int32(n*s/p), int32(n*(s+1)/p))
	}
	return e, nil
}

// Run drains every shard's event queue to completion — concurrently when
// the engine has more than one shard — merges the per-shard tallies in
// shard-index order, and returns the aggregated fleet result. For long
// runs that need checkpointing, interruption or a watchdog, use
// RunContext instead.
func (e *Engine) Run() (*Result, error) {
	if len(e.shards) == 1 {
		e.shards[0].drain(nil)
	} else {
		var wg sync.WaitGroup
		wg.Add(len(e.shards))
		for i := range e.shards {
			go func(sh *shard) {
				defer wg.Done()
				sh.drain(nil)
			}(&e.shards[i])
		}
		wg.Wait()
	}
	return e.merge()
}

// merge folds the quiescent per-shard tallies in shard-index order and
// builds the aggregated fleet result. The sample slices are id-indexed
// (each shard wrote only its own range), so the distributions cannot
// depend on the worker count.
func (e *Engine) merge() (*Result, error) {
	events, completed, lost, maxDoneSec, quarantined := e.tallies()
	if events != e.expectedEvents-lost || completed != e.cfg.Sessions-len(quarantined) {
		// Unreachable by construction (every Advance consumes exactly one
		// chunk); if it ever trips, the engine is mis-scheduling and the
		// run's aggregates cannot be trusted.
		return nil, fmt.Errorf("fleet: processed %d events for %d expected (%d lost to quarantine), completed %d+%d quarantined of %d sessions",
			events, e.expectedEvents, lost, completed, len(quarantined), e.cfg.Sessions)
	}
	res := &Result{
		Sessions:        e.cfg.Sessions,
		Events:          events,
		ExpectedEvents:  e.expectedEvents,
		LostEvents:      lost,
		Completed:       completed,
		Quarantined:     quarantined,
		VirtualSec:      maxDoneSec,
		RebufferSec:     metrics.NewSorted(e.samples(e.rebufferSec)),
		StartupDelaySec: metrics.NewSorted(e.samples(e.startupSec)),
		CompletionSec:   metrics.NewSorted(e.samples(e.completionSec)),
		SessionLenSec:   metrics.NewSorted(e.samples(e.sessionLenSec)),
		AvgQuality:      metrics.NewSorted(e.samples(e.avgQuality)),
		QualityChange:   metrics.NewSorted(e.samples(e.qualityChange)),
		AvgLevel:        metrics.NewSorted(e.samples(e.avgLevel)),
		Switches:        metrics.NewSorted(e.samples(e.switches)),
		DataMB:          metrics.NewSorted(e.samples(e.dataMB)),
		Results:         e.results,
	}
	return res, nil
}

// tallies folds the per-shard scalar tallies in shard-index order and
// collects the quarantine records in ascending session id. It reads state
// written by shard goroutines, so the engine must be quiescent (drained,
// or paused at the control barrier).
func (e *Engine) tallies() (events int64, completed int, lost int64, maxDoneSec float64, quarantined []Quarantine) {
	for i := range e.shards {
		sh := &e.shards[i]
		events += sh.events
		completed += sh.completed
		lost += sh.lostEvents
		if sh.maxDoneSec > maxDoneSec {
			maxDoneSec = sh.maxDoneSec
		}
		// Shards own contiguous ascending id ranges and append in step
		// order; a per-shard sort keeps the concatenation id-sorted even
		// though steps within a shard are not id-monotonic across instants.
		qs := append([]Quarantine(nil), sh.quarantined...)
		sort.Slice(qs, func(a, b int) bool { return qs[a].SessionID < qs[b].SessionID })
		quarantined = append(quarantined, qs...)
	}
	return events, completed, lost, maxDoneSec, quarantined
}

// samples filters a full id-indexed sample slice down to the sessions that
// actually produced samples: quarantined sessions' zero-valued slots must
// not dilute the distributions. The common no-quarantine case returns the
// slice as-is (NewSorted copies).
func (e *Engine) samples(xs []float64) []float64 {
	quarantined := 0
	for i := range e.shards {
		quarantined += len(e.shards[i].quarantined)
	}
	if quarantined == 0 {
		return xs
	}
	out := make([]float64, 0, len(xs)-quarantined)
	for id, x := range xs {
		if !e.sessions[id].quarantined {
			out = append(out, x)
		}
	}
	return out
}

// chunkBudget is the number of chunk events session id is scheduled to
// process: its video's chunk count, truncated by Config.MaxChunks.
func (e *Engine) chunkBudget(id int32) int {
	n := e.sessions[id].v.NumChunks()
	if e.cfg.MaxChunks > 0 && e.cfg.MaxChunks < n {
		n = e.cfg.MaxChunks
	}
	return n
}

// Run builds an engine for cfg and drains it — the one-call frontend.
func Run(cfg Config) (*Result, error) {
	e, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return e.Run()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
