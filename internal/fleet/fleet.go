// Package fleet is the discrete-event fleet simulator: up to a million
// concurrent ABR streaming sessions in one process, driven by a single
// binary-heap priority queue of (session, wakeup) events over virtual time.
//
// Where the chaos harness proves the stack survives N goroutine-per-client
// sessions with real sockets (N in the low hundreds), the fleet engine
// answers the scale question the paper's trace-driven methodology implies:
// what do QoE, rebuffering and switching look like across an entire
// population? Every session runs the same player.StepState core as
// player.Simulate and the DASH testbed client — one simulator, three
// frontends — so a one-session fleet reproduces player.Simulate exactly
// (see TestFleetEquivalence).
//
// Scale comes from three properties:
//
//   - shared immutable data: all sessions read the same video ladders and
//     bandwidth traces, each at its own per-session trace offset (staggered
//     arrivals, wraparound past the corpus end), so per-session memory is a
//     few hundred bytes of state, not a copy of the corpus;
//   - an allocation-free event loop: with chunk retention off and a nil
//     recorder, advancing a session performs zero allocations (guarded by
//     TestFleetZeroAllocPerEvent), and the event heap is typed and
//     preallocated;
//   - batched decisions: all sessions due at the same virtual instant are
//     drained from the heap and decided as one batch, in deterministic
//     session-id order.
//
// Every run is a pure function of Config (seeded rand only, no wall
// clock); the package sits in abrlint's determinism and units analyzer
// sets.
package fleet

import (
	"fmt"
	"math"
	"math/rand"

	"cava/internal/abr"
	"cava/internal/cache"
	"cava/internal/metrics"
	"cava/internal/player"
	"cava/internal/quality"
	"cava/internal/telemetry"
	"cava/internal/trace"
	"cava/internal/video"
)

// Config describes one fleet run. Videos, Traces and Scheme are required;
// zero values elsewhere select the documented defaults.
type Config struct {
	// Videos is the shared content catalog; each session streams one,
	// assigned by the seeded rng.
	Videos []*video.Video
	// Traces is the shared bandwidth corpus; each session replays one,
	// assigned by the seeded rng.
	Traces []*trace.Trace
	// Scheme is the adaptation algorithm every session runs (one fresh
	// instance per session, built lazily at the session's first event).
	Scheme abr.Scheme
	// Player is the shared player configuration (§6.1 defaults when zero).
	Player player.Config
	// Sessions is the fleet size (0 is a valid empty fleet).
	Sessions int
	// ArrivalRatePerSec staggers session starts as a seeded Poisson
	// process with this mean arrival rate in virtual time; non-positive
	// starts every session at virtual time 0.
	ArrivalRatePerSec float64
	// RandomTraceOffsets starts each session at a seeded uniform offset
	// into its trace (wrapping past the end), decorrelating sessions that
	// share a trace. Off, every session reads its trace from time 0 —
	// required for bit-exact equivalence with player.Simulate.
	RandomTraceOffsets bool
	// Seed drives every random assignment (videos, traces, offsets,
	// arrivals). Same seed, same fleet, same result.
	Seed int64
	// MaxChunks truncates each session after this many chunks (0 = full
	// video), bounding run time for smokes and benchmarks.
	MaxChunks int
	// Metric is the perceptual metric for per-chunk quality accounting
	// (default VMAF TV, matching the paper's FCC evaluation).
	Metric quality.Metric
	// Cache memoizes per-video quality tables across runs (nil computes
	// them directly).
	Cache *cache.Cache
	// Collect retains every session's full per-chunk player.Result —
	// memory grows with sessions × chunks, so this is for equivalence
	// tests and small-fleet debugging, not scale runs.
	Collect bool
	// Metrics, when non-nil, receives fleet_events_total,
	// fleet_sessions_completed_total and the fleet_sessions_active gauge.
	Metrics *telemetry.Registry
}

// Result aggregates a completed fleet run. The distributions hold one
// sample per session, queryable at any percentile via metrics.Sorted.
type Result struct {
	// Sessions is the fleet size; Events counts chunk-step events
	// processed (each session contributes exactly its chunk count).
	Sessions int
	Events   int64
	// ExpectedEvents is Σ per-session chunk counts — the exact event
	// budget of a run with no livelock.
	ExpectedEvents int64
	// VirtualSec is the fleet virtual time at which the last session
	// completed.
	VirtualSec float64
	// RebufferSec, StartupDelaySec, CompletionSec and SessionLenSec are
	// per-session stall totals, startup delays, completion times (arrival +
	// session length) and session lengths in virtual seconds. SessionLenSec
	// is the starvation signal: a session whose length blows past the
	// content duration is being starved by its trace.
	RebufferSec     metrics.Sorted
	StartupDelaySec metrics.Sorted
	CompletionSec   metrics.Sorted
	SessionLenSec   metrics.Sorted
	// AvgQuality and QualityChange are the per-session mean delivered
	// quality and mean absolute quality change per chunk; AvgLevel and
	// Switches are the mean selected track and the track-switch count.
	AvgQuality    metrics.Sorted
	QualityChange metrics.Sorted
	AvgLevel      metrics.Sorted
	Switches      metrics.Sorted
	// DataMB is per-session downloaded volume in megabytes.
	DataMB metrics.Sorted
	// Results holds the full per-session results when Config.Collect is
	// set (session order), nil otherwise.
	Results []*player.Result
}

// session is one fleet member: the shared step core plus its corpus
// assignment and the online aggregates that replace per-chunk records.
type session struct {
	step       player.StepState
	v          *video.Video
	tr         *trace.Trace
	qt         *quality.Table
	offsetSec  float64
	arrivalSec float64
	started    bool

	chunks        int
	lastLevel     int
	lastQual      float64
	switches      int
	levelSum      int
	qualSum       float64
	qualChangeSum float64
}

// Engine runs one fleet to completion. It is single-goroutine: the event
// loop is sequential by construction (virtual time orders everything), and
// one core comfortably clears hundreds of thousands of sessions.
type Engine struct {
	cfg      Config
	sessions []session
	heap     *eventHeap
	batch    []int32

	events         int64
	expectedEvents int64
	maxDoneSec     float64
	completed      int

	rebufferSec, startupSec, completionSec, sessionLenSec []float64
	avgQuality, qualityChange                             []float64
	avgLevel, switches, dataMB                            []float64
	results                                               []*player.Result

	mEvents    *telemetry.Counter
	mCompleted *telemetry.Counter
	mActive    *telemetry.Gauge
}

// New validates the config, assigns every session its video, trace, offset
// and arrival from the seed, and primes the event queue with the arrivals.
func New(cfg Config) (*Engine, error) {
	if len(cfg.Videos) == 0 || len(cfg.Traces) == 0 || cfg.Scheme.New == nil {
		return nil, fmt.Errorf("fleet: Config needs Videos, Traces and Scheme")
	}
	if cfg.Sessions < 0 {
		return nil, fmt.Errorf("fleet: negative session count %d", cfg.Sessions)
	}
	if cfg.Sessions > math.MaxInt32 {
		return nil, fmt.Errorf("fleet: session count %d exceeds the int32 event id space", cfg.Sessions)
	}
	if cfg.Sessions > 1 && cfg.Player.Predictor != nil {
		// A Predictor instance is single-session state; sharing one across
		// interleaved sessions would blend their throughput histories. Each
		// session gets its own default predictor when this is nil.
		return nil, fmt.Errorf("fleet: Player.Predictor is per-session state; leave it nil for multi-session fleets")
	}
	for _, v := range cfg.Videos {
		if err := v.Validate(); err != nil {
			return nil, fmt.Errorf("fleet: video %s: %w", v.ID(), err)
		}
	}
	qts := make(map[string]*quality.Table, len(cfg.Videos))
	for _, v := range cfg.Videos {
		qts[v.ID()] = cfg.Cache.QualityTable(v, cfg.Metric)
	}
	for _, tr := range cfg.Traces {
		if err := tr.Validate(); err != nil {
			return nil, fmt.Errorf("fleet: trace %s: %w", tr.ID, err)
		}
	}

	n := cfg.Sessions
	e := &Engine{
		cfg:           cfg,
		sessions:      make([]session, n),
		heap:          newEventHeap(n),
		batch:         make([]int32, 0, minInt(n, 4096)),
		rebufferSec:   make([]float64, 0, n),
		startupSec:    make([]float64, 0, n),
		completionSec: make([]float64, 0, n),
		sessionLenSec: make([]float64, 0, n),
		avgQuality:    make([]float64, 0, n),
		qualityChange: make([]float64, 0, n),
		avgLevel:      make([]float64, 0, n),
		switches:      make([]float64, 0, n),
		dataMB:        make([]float64, 0, n),
		mEvents:       cfg.Metrics.Counter("fleet_events_total", "fleet chunk-step events processed"),
		mCompleted:    cfg.Metrics.Counter("fleet_sessions_completed_total", "fleet sessions run to completion"),
		mActive:       cfg.Metrics.Gauge("fleet_sessions_active", "fleet sessions arrived and not yet complete"),
	}
	if cfg.Collect {
		e.results = make([]*player.Result, 0, n)
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	arrivalSec := 0.0
	for i := 0; i < n; i++ {
		v := cfg.Videos[rng.Intn(len(cfg.Videos))]
		tr := cfg.Traces[rng.Intn(len(cfg.Traces))]
		offSec := 0.0
		if cfg.RandomTraceOffsets {
			offSec = rng.Float64() * tr.Duration()
		}
		if cfg.ArrivalRatePerSec > 0 && i > 0 {
			arrivalSec += rng.ExpFloat64() / cfg.ArrivalRatePerSec
		}
		e.sessions[i] = session{
			v: v, tr: tr, qt: qts[v.ID()],
			offsetSec: offSec, arrivalSec: arrivalSec,
			lastLevel: -1,
		}
		chunks := v.NumChunks()
		if cfg.MaxChunks > 0 && cfg.MaxChunks < chunks {
			chunks = cfg.MaxChunks
		}
		e.expectedEvents += int64(chunks)
		e.heap.push(event{wakeSec: arrivalSec, id: int32(i)})
	}
	return e, nil
}

// Run drains the event queue to completion and returns the aggregated
// fleet result.
func (e *Engine) Run() (*Result, error) {
	for e.heap.len() > 0 {
		e.runBatch()
	}
	if e.events != e.expectedEvents || e.completed != e.cfg.Sessions {
		// Unreachable by construction (every Advance consumes exactly one
		// chunk); if it ever trips, the engine is mis-scheduling and the
		// run's aggregates cannot be trusted.
		return nil, fmt.Errorf("fleet: processed %d events for %d expected, completed %d/%d sessions",
			e.events, e.expectedEvents, e.completed, e.cfg.Sessions)
	}
	return &Result{
		Sessions:        e.cfg.Sessions,
		Events:          e.events,
		ExpectedEvents:  e.expectedEvents,
		VirtualSec:      e.maxDoneSec,
		RebufferSec:     metrics.NewSorted(e.rebufferSec),
		StartupDelaySec: metrics.NewSorted(e.startupSec),
		CompletionSec:   metrics.NewSorted(e.completionSec),
		SessionLenSec:   metrics.NewSorted(e.sessionLenSec),
		AvgQuality:      metrics.NewSorted(e.avgQuality),
		QualityChange:   metrics.NewSorted(e.qualityChange),
		AvgLevel:        metrics.NewSorted(e.avgLevel),
		Switches:        metrics.NewSorted(e.switches),
		DataMB:          metrics.NewSorted(e.dataMB),
		Results:         e.results,
	}, nil
}

// runBatch drains every event due at the earliest pending instant and
// advances those sessions as one batch. Heap order already yields the
// batch in session-id order (the deterministic tie-break), so batched
// decisions are reproducible run to run.
func (e *Engine) runBatch() {
	dueSec := e.heap.peek().wakeSec
	e.batch = e.batch[:0]
	//lint:allow floateq a batch is the bit-identical instant; a tolerance would merge distinct wakeups and reorder decisions
	for e.heap.len() > 0 && e.heap.peek().wakeSec == dueSec {
		e.batch = append(e.batch, e.heap.pop().id)
	}
	for _, id := range e.batch {
		e.stepSession(id)
	}
}

// stepSession advances one session by one chunk event and reschedules or
// finalizes it.
func (e *Engine) stepSession(id int32) {
	s := &e.sessions[id]
	if !s.started {
		// Lazy start: the algorithm instance is built at the session's
		// first event, so construction cost follows the arrival process
		// instead of front-loading New, and completed sessions can be
		// released while later arrivals are still warming up.
		s.step.Init(s.v, s.v.ID(), s.tr.ID, e.cfg.Scheme.New(s.v), e.cfg.Player, e.cfg.Collect)
		s.step.LimitChunks(e.cfg.MaxChunks)
		s.started = true
		e.mActive.Add(1)
	}
	wakeSec := s.step.Advance(s.tr, s.offsetSec)
	e.events++
	e.mEvents.Inc()
	e.observeChunk(s)
	if s.step.Done() {
		e.finishSession(s)
		return
	}
	e.heap.push(event{wakeSec: s.arrivalSec + wakeSec, id: id})
}

// observeChunk folds the just-completed chunk into the session's online
// aggregates — the fleet-scale replacement for per-chunk records.
func (e *Engine) observeChunk(s *session) {
	rec := &s.step.Rec
	q := s.qt.At(rec.Level, rec.Index)
	if s.chunks > 0 {
		if rec.Level != s.lastLevel {
			s.switches++
		}
		s.qualChangeSum += math.Abs(q - s.lastQual)
	}
	s.lastLevel = rec.Level
	s.lastQual = q
	s.levelSum += rec.Level
	s.qualSum += q
	s.chunks++
}

// finishSession extracts the session's distribution samples and releases
// its per-session state (algorithm, predictor) back to the collector.
func (e *Engine) finishSession(s *session) {
	res := s.step.Take()
	doneSec := s.arrivalSec + res.SessionSec
	if doneSec > e.maxDoneSec {
		e.maxDoneSec = doneSec
	}
	e.rebufferSec = append(e.rebufferSec, res.TotalRebufferSec)
	e.startupSec = append(e.startupSec, res.StartupDelaySec)
	e.completionSec = append(e.completionSec, doneSec)
	e.sessionLenSec = append(e.sessionLenSec, res.SessionSec)
	e.dataMB = append(e.dataMB, res.TotalBits/8/1e6)
	chunks := float64(maxInt(s.chunks, 1))
	e.avgQuality = append(e.avgQuality, s.qualSum/chunks)
	e.qualityChange = append(e.qualityChange, s.qualChangeSum/chunks)
	e.avgLevel = append(e.avgLevel, float64(s.levelSum)/chunks)
	e.switches = append(e.switches, float64(s.switches))
	e.completed++
	e.mCompleted.Inc()
	e.mActive.Add(-1)
	if e.cfg.Collect {
		e.results = append(e.results, res)
		return
	}
	// Drop the algorithm, predictor and step state; at fleet scale the
	// arrived-but-unfinished working set is what bounds peak RSS.
	s.step = player.StepState{}
}

// Run builds an engine for cfg and drains it — the one-call frontend.
func Run(cfg Config) (*Result, error) {
	e, err := New(cfg)
	if err != nil {
		return nil, err
	}
	return e.Run()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
