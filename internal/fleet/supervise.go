package fleet

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"cava/internal/metrics"
)

// ErrInterrupted is returned (wrapped) by RunContext when the context is
// cancelled before the fleet completes. The accompanying Result is the
// partial population — distributions over the sessions that finished —
// and, when RunOptions.CheckpointDir is set, a final checkpoint has been
// written so the run can be resumed.
var ErrInterrupted = errors.New("fleet: run interrupted")

// RunOptions configures a supervised run.
type RunOptions struct {
	// CheckpointDir enables checkpointing: the engine writes an atomic
	// snapshot (CheckpointFile) into this directory every
	// CheckpointEverySec of wall time and once more when the context is
	// cancelled. Empty disables checkpointing. Requires Collect off (the
	// snapshot holds per-session aggregates, not per-chunk records).
	CheckpointDir string
	// CheckpointEverySec is the periodic snapshot interval in wall
	// seconds; non-positive writes only the final on-cancel snapshot.
	// A failed periodic write does not abort the run (the engine may
	// still finish normally); it is counted in
	// fleet_checkpoint_errors_total and the next interval retries.
	CheckpointEverySec float64
	// WatchdogSec fails the run when any unfinished shard makes no event
	// progress for at least this many wall seconds: instead of hanging
	// forever on a livelocked or deadlocked shard, RunContext returns an
	// error carrying per-shard progress and a full goroutine dump.
	// Non-positive disables the watchdog. Detection latency is between
	// one and two intervals (progress is sampled once per interval).
	WatchdogSec float64
}

// control coordinates a supervised run between the supervisor and the
// shard goroutines: checkpoint barriers (pause every shard at a batch
// boundary, snapshot the quiescent engine, resume) and cooperative abort.
// The no-pause fast path costs the shards one atomic load per batch.
type control struct {
	pause atomic.Bool
	abort atomic.Bool

	mu     sync.Mutex
	cond   *sync.Cond
	active int    // shards still draining (parked or running)
	parked int    // shards waiting at the barrier
	gen    uint64 // barrier generation, bumped by each resume
}

func newControl(active int) *control {
	c := &control{active: active}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// gate is the shards' per-batch check: a single atomic load when nothing
// is requested; when a pause is requested, park at the barrier until the
// supervisor resumes. Returns false when the run is aborting and the
// shard must stop draining.
func (c *control) gate() bool {
	if c.abort.Load() {
		return false
	}
	if !c.pause.Load() {
		return true
	}
	c.mu.Lock()
	c.parked++
	gen := c.gen
	c.cond.Broadcast() // wake the supervisor waiting for full quiescence
	for c.gen == gen {
		c.cond.Wait()
	}
	c.parked--
	c.cond.Broadcast() // wake resumeAll waiting for the barrier to drain
	c.mu.Unlock()
	return !c.abort.Load()
}

// shardDone retires one shard that drained its heap to completion.
func (c *control) shardDone() {
	c.mu.Lock()
	c.active--
	c.cond.Broadcast()
	c.mu.Unlock()
}

// pauseAll requests a pause and blocks until every still-active shard is
// parked at the barrier (or has finished), leaving the engine quiescent:
// no shard is inside a batch, so all per-session state is safe to read
// from the supervisor (the barrier's mutex publishes it).
func (c *control) pauseAll() {
	c.pause.Store(true)
	c.mu.Lock()
	for c.parked < c.active {
		c.cond.Wait()
	}
	c.mu.Unlock()
}

// resumeAll releases a pause and blocks until every shard parked at the
// released barrier has left it. Without the drain, a pauseAll issued
// immediately after (e.g. a pending ctx.Done selected right after a
// periodic checkpoint) could observe parked >= active while the counts
// still belong to the previous generation, report quiescence while the
// woken shards run batches, and let writeCheckpoint race shard state.
func (c *control) resumeAll() {
	c.mu.Lock()
	c.pause.Store(false)
	c.gen++
	c.cond.Broadcast()
	for c.parked > 0 {
		c.cond.Wait()
	}
	c.mu.Unlock()
}

// abortAll makes every subsequent gate call return false. Combined with
// resumeAll it releases parked shards straight into an early return.
func (c *control) abortAll() {
	c.abort.Store(true)
}

// RunContext drains the fleet like Run under a supervisor: the run can be
// checkpointed periodically, interrupted via the context (checkpoint-then-
// return with the partial population), and is watched for shards that stop
// making progress. On cancellation it returns the partial Result together
// with an error wrapping ErrInterrupted. Like Run, it consumes the engine:
// call it once.
func (e *Engine) RunContext(ctx context.Context, opts RunOptions) (*Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if opts.CheckpointDir != "" && e.cfg.Collect {
		return nil, fmt.Errorf("fleet: checkpointing requires Collect off (per-chunk records are not snapshotted)")
	}

	ctl := newControl(len(e.shards))
	var wg sync.WaitGroup
	wg.Add(len(e.shards))
	for i := range e.shards {
		go func(sh *shard) {
			defer wg.Done()
			sh.drain(ctl)
		}(&e.shards[i])
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()

	var ckptC <-chan time.Time
	if opts.CheckpointDir != "" && opts.CheckpointEverySec > 0 {
		t := time.NewTicker(time.Duration(opts.CheckpointEverySec * float64(time.Second)))
		defer t.Stop()
		ckptC = t.C
	}
	var watchC <-chan time.Time
	lastSeen := make([]int64, len(e.shards))
	for i := range lastSeen {
		lastSeen[i] = -2 // below any real progress value, so tick 1 is a baseline
	}
	if opts.WatchdogSec > 0 {
		t := time.NewTicker(time.Duration(opts.WatchdogSec * float64(time.Second)))
		defer t.Stop()
		watchC = t.C
	}

	for {
		select {
		case <-done:
			return e.merge()

		case <-ctx.Done():
			// Quiesce, snapshot (when configured), then release the shards
			// straight into an early return so no goroutine outlives the
			// call.
			ctl.pauseAll()
			var ckptErr error
			if opts.CheckpointDir != "" {
				if ckptErr = e.writeCheckpoint(opts.CheckpointDir); ckptErr != nil {
					e.mCkptErrors.Inc()
				} else {
					e.mCkptWritten.Inc()
				}
			}
			ctl.abortAll()
			ctl.resumeAll()
			<-done
			res := e.partialResult()
			if ckptErr != nil {
				return res, fmt.Errorf("%w (final checkpoint failed: %v)", ErrInterrupted, ckptErr)
			}
			return res, ErrInterrupted

		case <-ckptC:
			ctl.pauseAll()
			err := e.writeCheckpoint(opts.CheckpointDir)
			ctl.resumeAll()
			if err != nil {
				e.mCkptErrors.Inc()
			} else {
				e.mCkptWritten.Inc()
			}
			// Shards were parked while the snapshot was written; a slow
			// write can outlast WatchdogSec and leave a buffered watchdog
			// tick pending. Forget the progress baselines so that tick
			// re-baselines instead of failing a healthy run for "no
			// progress" it was never allowed to make.
			for i := range lastSeen {
				lastSeen[i] = -2
			}

		case <-watchC:
			if stuck := e.stalledShards(lastSeen); len(stuck) > 0 {
				// A stuck shard cannot be stopped from outside; tell the
				// healthy ones to wind down and surface the diagnostic.
				// The caller should treat this as fatal for the process.
				ctl.abortAll()
				return nil, e.watchdogError(stuck, opts.WatchdogSec)
			}
		}
	}
}

// stalledShards compares each unfinished shard's progress counter against
// the previous watchdog sample, updating lastSeen in place, and returns
// the indexes of shards that processed no events over the interval.
func (e *Engine) stalledShards(lastSeen []int64) []int {
	var stuck []int
	for i := range e.shards {
		p := e.shards[i].progress.Load()
		if p == shardFinished {
			lastSeen[i] = p
			continue
		}
		if p == lastSeen[i] {
			stuck = append(stuck, i)
			continue
		}
		lastSeen[i] = p
	}
	return stuck
}

// watchdogError builds the no-progress diagnostic: which shards stalled,
// every shard's event progress, and a full goroutine dump so the stuck
// frame is identifiable post-mortem.
func (e *Engine) watchdogError(stuck []int, deadlineSec float64) error {
	progress := make([]int64, len(e.shards))
	for i := range e.shards {
		progress[i] = e.shards[i].progress.Load()
	}
	buf := make([]byte, 1<<20)
	buf = buf[:runtime.Stack(buf, true)]
	return fmt.Errorf("fleet: watchdog: shard(s) %v made no event progress for %.0f s wall; per-shard events %v; goroutine dump:\n%s",
		stuck, deadlineSec, progress, buf)
}

// shardFinished is the progress-counter sentinel a shard publishes when
// its heap is drained, so the watchdog stops expecting progress from it.
const shardFinished = int64(-1)

// partialResult aggregates the sessions that completed before an
// interrupt: the distributions cover only sessions with samples, and the
// event accounting reflects work actually done. No closure check applies —
// the run is partial by definition.
func (e *Engine) partialResult() *Result {
	events, completed, lost, maxDoneSec, quarantined := e.tallies()
	fields := [...][]float64{
		e.rebufferSec, e.startupSec, e.completionSec, e.sessionLenSec,
		e.avgQuality, e.qualityChange, e.avgLevel, e.switches, e.dataMB,
	}
	out := make([][]float64, len(fields))
	for i := range out {
		out[i] = make([]float64, 0, completed)
	}
	for id := range e.sessions {
		if !e.sessions[id].done {
			continue
		}
		for i, xs := range fields {
			out[i] = append(out[i], xs[id])
		}
	}
	return &Result{
		Sessions:        e.cfg.Sessions,
		Events:          events,
		ExpectedEvents:  e.expectedEvents,
		LostEvents:      lost,
		Completed:       completed,
		Quarantined:     quarantined,
		VirtualSec:      maxDoneSec,
		RebufferSec:     metrics.NewSorted(out[0]),
		StartupDelaySec: metrics.NewSorted(out[1]),
		CompletionSec:   metrics.NewSorted(out[2]),
		SessionLenSec:   metrics.NewSorted(out[3]),
		AvgQuality:      metrics.NewSorted(out[4]),
		QualityChange:   metrics.NewSorted(out[5]),
		AvgLevel:        metrics.NewSorted(out[6]),
		Switches:        metrics.NewSorted(out[7]),
		DataMB:          metrics.NewSorted(out[8]),
		Results:         e.results,
	}
}
