package fleet

// event is one scheduled wakeup: session id is due for service at wakeSec
// of fleet virtual time. Events order by (wakeSec, id): simultaneous
// wakeups tie-break deterministically by session id, so a run's event
// order — and therefore its output — is a pure function of the seed, never
// of insertion history or scheduling.
type event struct {
	wakeSec float64
	id      int32
}

// eventLess is the heap order: earliest wakeup first, session id as the
// deterministic tie-break.
func eventLess(a, b event) bool {
	//lint:allow floateq exact tie-break: equal wakeups are copied bits, and only bit-equal instants may fall through to the id order
	if a.wakeSec != b.wakeSec {
		return a.wakeSec < b.wakeSec
	}
	return a.id < b.id
}

// eventHeap is a binary min-heap of events with typed push/pop. It
// deliberately does not use container/heap: the interface would box every
// event into an `any` (one allocation per operation), which the engine's
// zero-alloc per-event contract cannot afford. The backing slice is
// preallocated to the fleet size, so steady-state push/pop never grows it.
type eventHeap struct {
	ev []event
}

func newEventHeap(capacity int) *eventHeap {
	return &eventHeap{ev: make([]event, 0, capacity)}
}

func (h *eventHeap) len() int { return len(h.ev) }

// peek returns the earliest event without removing it. Callers check len
// first; peeking an empty heap is a caller bug and panics via the bounds
// check.
func (h *eventHeap) peek() event { return h.ev[0] }

// push inserts an event, sifting it up to its ordered position.
func (h *eventHeap) push(e event) {
	//lint:allow hotalloc backing slice is preallocated to the shard size in shard.init; each session has at most one pending event, so this append never grows
	h.ev = append(h.ev, e)
	i := len(h.ev) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(h.ev[i], h.ev[parent]) {
			break
		}
		h.ev[i], h.ev[parent] = h.ev[parent], h.ev[i]
		i = parent
	}
}

// drainInstant pops and processes every event due at the earliest pending
// instant before returning, so virtual time never advances past work still
// scheduled at the current instant. Processing proceeds in rounds: one
// round pops the instant's currently queued events — heap order yields them
// in ascending session id, the deterministic tie-break — and steps each; a
// session that step re-pushes at the same instant (a zero-duration wakeup)
// lands in the *next round of the same call*, never in a later instant.
// The previous engine returned after the first round, deferring same-
// instant re-wakes to a later batch and breaking the documented ordering
// contract; the round structure is now the contract (a session stepped
// twice in one instant necessarily interleaves ids across rounds, so a
// single globally id-sorted pass cannot exist).
//
// batch is the caller's reusable scratch buffer, returned (possibly grown)
// for the next call; with a preallocated buffer and a prebuilt step func
// the drain allocates nothing.
func drainInstant(h *eventHeap, batch []int32, step func(id int32)) []int32 {
	dueSec := h.peek().wakeSec
	//lint:allow floateq a round is the bit-identical instant; a tolerance would merge distinct wakeups and reorder decisions
	for h.len() > 0 && h.peek().wakeSec == dueSec {
		batch = batch[:0]
		//lint:allow floateq same exact-instant membership test as the outer round condition
		for h.len() > 0 && h.peek().wakeSec == dueSec {
			//lint:allow hotalloc batch is preallocated in shard.init (min(shard size, 4096)); growth needs >4096 same-instant wakeups and is amortized across the run
			batch = append(batch, h.pop().id)
		}
		for _, id := range batch {
			step(id)
		}
	}
	return batch
}

// pop removes and returns the earliest event, sifting the displaced tail
// element down.
func (h *eventHeap) pop() event {
	top := h.ev[0]
	n := len(h.ev) - 1
	h.ev[0] = h.ev[n]
	h.ev = h.ev[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && eventLess(h.ev[l], h.ev[smallest]) {
			smallest = l
		}
		if r < n && eventLess(h.ev[r], h.ev[smallest]) {
			smallest = r
		}
		if smallest == i {
			return top
		}
		h.ev[i], h.ev[smallest] = h.ev[smallest], h.ev[i]
		i = smallest
	}
}
