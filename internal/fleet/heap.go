package fleet

// event is one scheduled wakeup: session id is due for service at wakeSec
// of fleet virtual time. Events order by (wakeSec, id): simultaneous
// wakeups tie-break deterministically by session id, so a run's event
// order — and therefore its output — is a pure function of the seed, never
// of insertion history or scheduling.
type event struct {
	wakeSec float64
	id      int32
}

// eventLess is the heap order: earliest wakeup first, session id as the
// deterministic tie-break.
func eventLess(a, b event) bool {
	//lint:allow floateq exact tie-break: equal wakeups are copied bits, and only bit-equal instants may fall through to the id order
	if a.wakeSec != b.wakeSec {
		return a.wakeSec < b.wakeSec
	}
	return a.id < b.id
}

// eventHeap is a binary min-heap of events with typed push/pop. It
// deliberately does not use container/heap: the interface would box every
// event into an `any` (one allocation per operation), which the engine's
// zero-alloc per-event contract cannot afford. The backing slice is
// preallocated to the fleet size, so steady-state push/pop never grows it.
type eventHeap struct {
	ev []event
}

func newEventHeap(capacity int) *eventHeap {
	return &eventHeap{ev: make([]event, 0, capacity)}
}

func (h *eventHeap) len() int { return len(h.ev) }

// peek returns the earliest event without removing it. Callers check len
// first; peeking an empty heap is a caller bug and panics via the bounds
// check.
func (h *eventHeap) peek() event { return h.ev[0] }

// push inserts an event, sifting it up to its ordered position.
func (h *eventHeap) push(e event) {
	h.ev = append(h.ev, e)
	i := len(h.ev) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(h.ev[i], h.ev[parent]) {
			break
		}
		h.ev[i], h.ev[parent] = h.ev[parent], h.ev[i]
		i = parent
	}
}

// pop removes and returns the earliest event, sifting the displaced tail
// element down.
func (h *eventHeap) pop() event {
	top := h.ev[0]
	n := len(h.ev) - 1
	h.ev[0] = h.ev[n]
	h.ev = h.ev[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && eventLess(h.ev[l], h.ev[smallest]) {
			smallest = l
		}
		if r < n && eventLess(h.ev[r], h.ev[smallest]) {
			smallest = r
		}
		if smallest == i {
			return top
		}
		h.ev[i], h.ev[smallest] = h.ev[smallest], h.ev[i]
		i = smallest
	}
}
