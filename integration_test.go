package cava_test

import (
	"testing"

	"cava/internal/abr"
	"cava/internal/core"
	"cava/internal/metrics"
	"cava/internal/player"
	"cava/internal/quality"
	"cava/internal/scene"
	"cava/internal/trace"
	"cava/internal/video"
)

// allSchemes is every scheme in the repository, for cross-cutting tests.
func allSchemes() []abr.Scheme {
	return []abr.Scheme{
		{Name: "CAVA", New: core.Factory()},
		{Name: "CAVA-p1", New: core.Variant("p1")},
		{Name: "CAVA-p12", New: core.Variant("p12")},
		{Name: "CAVA-live5", New: core.Live(5)},
		{Name: "MPC", New: func(v *video.Video) abr.Algorithm { return abr.NewMPC(v, false) }},
		{Name: "RobustMPC", New: func(v *video.Video) abr.Algorithm { return abr.NewMPC(v, true) }},
		{Name: "PANDA-sum", New: func(v *video.Video) abr.Algorithm {
			return abr.NewPANDACQ(v, quality.NewTable(v, quality.PSNR), abr.MaxSum)
		}},
		{Name: "PANDA-min", New: func(v *video.Video) abr.Algorithm {
			return abr.NewPANDACQ(v, quality.NewTable(v, quality.PSNR), abr.MaxMin)
		}},
		{Name: "BOLA", New: func(v *video.Video) abr.Algorithm { return abr.NewBOLAE(v, abr.BOLAAvg, false) }},
		{Name: "BOLA-E peak", New: func(v *video.Video) abr.Algorithm { return abr.NewBOLAE(v, abr.BOLAPeak, true) }},
		{Name: "BOLA-E avg", New: func(v *video.Video) abr.Algorithm { return abr.NewBOLAE(v, abr.BOLAAvg, true) }},
		{Name: "BOLA-E seg", New: func(v *video.Video) abr.Algorithm { return abr.NewBOLAE(v, abr.BOLASeg, true) }},
		{Name: "BBA-1", New: func(v *video.Video) abr.Algorithm { return abr.NewBBA1(v, 0, 0) }},
		{Name: "RBA", New: func(v *video.Video) abr.Algorithm { return abr.NewRBA(v, 4) }},
		{Name: "PIA", New: func(v *video.Video) abr.Algorithm { return abr.NewPIA(v) }},
		{Name: "FESTIVE", New: func(v *video.Video) abr.Algorithm { return abr.NewFESTIVE(v) }},
	}
}

// TestEverySchemeOnEveryVideo streams every scheme over every dataset video
// (plus the 4x-capped encode) on LTE and FCC traces and checks session
// invariants end to end. This is the repository's broadest integration
// sweep: ~500 full sessions.
func TestEverySchemeOnEveryVideo(t *testing.T) {
	if testing.Short() {
		t.Skip("broad integration sweep")
	}
	videos := append(video.Dataset(), video.Cap4xED())
	traces := []*trace.Trace{trace.GenLTE(0), trace.GenFCC(0)}
	cfg := player.DefaultConfig()
	for _, v := range videos {
		qt := quality.NewTable(v, quality.VMAFPhone)
		cats := scene.ClassifyDefault(v)
		for _, tr := range traces {
			for _, sc := range allSchemes() {
				res, err := player.Simulate(v, tr, sc.New(v), cfg)
				if err != nil {
					t.Fatalf("%s / %s / %s: %v", v.ID(), tr.ID, sc.Name, err)
				}
				if len(res.Chunks) != v.NumChunks() {
					t.Fatalf("%s / %s / %s: %d chunks", v.ID(), tr.ID, sc.Name, len(res.Chunks))
				}
				s := metrics.Summarize(res, qt, cats)
				if s.AvgQuality <= 0 || s.AvgQuality > 100 {
					t.Fatalf("%s / %s / %s: avg quality %v", v.ID(), tr.ID, sc.Name, s.AvgQuality)
				}
				if s.DataMB <= 0 {
					t.Fatalf("%s / %s / %s: no data downloaded", v.ID(), tr.ID, sc.Name)
				}
				if s.RebufferSec < 0 || s.RebufferSec > 1200 {
					t.Fatalf("%s / %s / %s: rebuffering %v", v.ID(), tr.ID, sc.Name, s.RebufferSec)
				}
			}
		}
	}
}

// TestHeadlineOrdering verifies the paper's core claims hold on a modest
// sweep: among manifest-only schemes CAVA has the best Q4 quality, and it
// rebuffers far less than the optimization baselines while using no more
// data.
func TestHeadlineOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-trace ordering sweep")
	}
	v := video.FFmpegVideo(video.Title{Name: "ED", Genre: video.SciFi}, video.H264)
	qt := quality.NewTable(v, quality.VMAFPhone)
	cats := scene.ClassifyDefault(v)
	cfg := player.DefaultConfig()

	agg := map[string][]metrics.Summary{}
	schemes := []abr.Scheme{
		{Name: "CAVA", New: core.Factory()},
		{Name: "RobustMPC", New: func(v *video.Video) abr.Algorithm { return abr.NewMPC(v, true) }},
		{Name: "RBA", New: func(v *video.Video) abr.Algorithm { return abr.NewRBA(v, 4) }},
		{Name: "BBA-1", New: func(v *video.Video) abr.Algorithm { return abr.NewBBA1(v, 0, 0) }},
	}
	const n = 25
	for _, sc := range schemes {
		for i := 0; i < n; i++ {
			res := mustSimulate(t, v, trace.GenLTE(i), sc.New(v), cfg)
			agg[sc.Name] = append(agg[sc.Name], metrics.Summarize(res, qt, cats))
		}
	}
	mean := func(name string, f metrics.Field) float64 {
		return metrics.Mean(metrics.Collect(agg[name], f))
	}

	cavaQ4 := mean("CAVA", metrics.FieldQ4Quality)
	for _, base := range []string{"RobustMPC", "RBA", "BBA-1"} {
		if bq := mean(base, metrics.FieldQ4Quality); cavaQ4 <= bq {
			t.Errorf("CAVA Q4 %.1f not above %s's %.1f", cavaQ4, base, bq)
		}
	}
	if cr, rr := mean("CAVA", metrics.FieldRebuffer), mean("RobustMPC", metrics.FieldRebuffer); cr >= rr {
		t.Errorf("CAVA rebuffering %.1f not below RobustMPC's %.1f", cr, rr)
	}
	if cd, rd := mean("CAVA", metrics.FieldDataMB), mean("RobustMPC", metrics.FieldDataMB); cd > rd*1.05 {
		t.Errorf("CAVA data %.1f MB above RobustMPC's %.1f", cd, rd)
	}
	if cc, rc := mean("CAVA", metrics.FieldQualityChange), mean("RobustMPC", metrics.FieldQualityChange); cc >= rc {
		t.Errorf("CAVA quality change %.2f not below RobustMPC's %.2f", cc, rc)
	}
}

// mustSimulate runs a simulation, failing the test on error: integration
// fixtures are valid by construction, so an error is a harness bug.
func mustSimulate(tb testing.TB, v *video.Video, tr *trace.Trace, algo abr.Algorithm, cfg player.Config) *player.Result {
	tb.Helper()
	res, err := player.Simulate(v, tr, algo, cfg)
	if err != nil {
		tb.Fatalf("Simulate(%s, %s): %v", v.ID(), tr.ID, err)
	}
	return res
}
